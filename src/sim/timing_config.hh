/**
 * @file
 * Timing model parameters for the simulated heterogeneous-ISA platform.
 *
 * Every latency in the simulation comes from this struct, so calibration
 * and ablation studies only ever touch one place. Defaults reproduce the
 * paper's prototype (Table I and the measurements quoted in Section V):
 * a 2.4 GHz Xeon-class host, a 200 MHz RV64I NxP behind PCIe 3.0 x8,
 * 825 ns host->NxP-DRAM and 267 ns NxP->local-DRAM round trips.
 */

#ifndef FLICK_SIM_TIMING_CONFIG_HH
#define FLICK_SIM_TIMING_CONFIG_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace flick
{

/**
 * All tunable latencies and frequencies of the simulated platform.
 *
 * Members are grouped by subsystem. The "kernel charge" group models the
 * cost of the paper's (<2 kLoC) Linux modifications; these are charged as
 * fixed time rather than executed instruction-by-instruction, with values
 * calibrated so the Table III microbenchmark reproduces the paper's
 * 18.3 us / 16.9 us round trips (see EXPERIMENTS.md for the calibration).
 */
struct TimingConfig
{
    // --- Clock domains -----------------------------------------------
    /** Host core frequency (Xeon E5-2620v3 class). */
    std::uint64_t hostFreqHz = 2'400'000'000ull;
    /** NxP core frequency (RV12 soft core on the FPGA). */
    std::uint64_t nxpFreqHz = 200'000'000ull;

    // --- Memory access round trips (requester -> target) -------------
    /** Host core to host DRAM. */
    Tick hostToHostDram = ns(90);
    /** Host core to NxP DRAM through the PCIe BAR (paper: ~825 ns). */
    Tick hostToNxpDram = ns(825);
    /** NxP core to its local DRAM (paper: ~267 ns). */
    Tick nxpToNxpDram = ns(267);
    /** NxP core to host DRAM through the PCIe bridge. */
    Tick nxpToHostDram = ns(810);
    /** NxP core to a local device register (on-FPGA interconnect). */
    Tick nxpToLocalMmio = ns(40);
    /** Host core to an NxP device register (PCIe posted/non-posted). */
    Tick hostToNxpMmio = ns(825);

    // --- Caches --------------------------------------------------------
    /** NxP instruction cache: line size in bytes. */
    std::uint32_t nxpIcacheLineBytes = 64;
    /** NxP instruction cache: number of lines (direct mapped). */
    std::uint32_t nxpIcacheLines = 256;
    /**
     * Whether the NxP data cache is enabled for non-coherent (local)
     * regions. PCIe offers no coherence, so it is never enabled for host
     * memory (Section IV-A).
     */
    bool nxpDcacheLocalEnable = false;

    // --- Address translation ------------------------------------------
    /** Host TLB entries (modelled as one level, fully associative). */
    std::uint32_t hostTlbEntries = 1536;
    /** NxP L1 I-TLB entries (paper: 16, one-cycle). */
    std::uint32_t nxpItlbEntries = 16;
    /** NxP L1 D-TLB entries (paper: 16, one-cycle). */
    std::uint32_t nxpDtlbEntries = 16;
    /**
     * Programmable-MMU (MicroBlaze) fixed overhead per walk, on top of
     * the per-level page table reads from host memory.
     */
    Tick nxpMmuWalkOverhead = ns(400);
    /** Host hardware walker overhead per walk. */
    Tick hostMmuWalkOverhead = ns(20);

    // --- PCIe DMA engine and interrupts --------------------------------
    /** Fixed setup latency of one DMA burst transfer. */
    Tick dmaSetup = ns(1250);
    /** DMA per-byte cost (PCIe 3.0 x8 ~ 7.9 GB/s effective). */
    Tick dmaPerByte = ps(127);
    /**
     * Extra per-element chaining cost inside one coalesced descriptor
     * burst: each chained descriptor after the first adds a descriptor-
     * table fetch, far cheaper than a fresh dmaSetup. Only charged when
     * descriptor batching is enabled.
     */
    Tick dmaChainPerDescriptor = ns(150);
    /**
     * How long the driver holds a staged migration descriptor open for
     * more same-device descriptors before ringing the doorbell, when
     * descriptor batching is enabled. Storm-load submissions arriving
     * inside the window coalesce into one DMA burst and one doorbell
     * write; under light load the window just adds up to this much
     * latency per crossing (batching is opt-in for exactly this reason).
     */
    Tick dmaBatchWindow = us(15);
    /** MSI interrupt delivery latency, device to host core. */
    Tick irqDelivery = ns(900);
    /**
     * Driver watchdog period for an outstanding device->host descriptor:
     * if the completion MSI was lost, a poll after this long finds the
     * landed descriptor and services it. Only armed when fault injection
     * is active, so the fault-free event stream is unchanged.
     */
    Tick descriptorTimeout = us(60);
    /**
     * Device health heartbeat: how often the driver checks that every
     * busy NxP device made forward progress (instructions retired, DMA
     * completed, descriptors consumed). Only armed when endpoint fault
     * injection or a call deadline is configured, so the fault-free
     * event stream is unchanged.
     */
    Tick deviceHeartbeat = us(60);

    // --- Kernel charges (the paper's Linux modifications) --------------
    /**
     * NX instruction page fault service: trap entry, fault decode,
     * return-address hijack (paper: the page fault accounts for 0.7 us
     * of the total migration overhead).
     */
    Tick nxFaultService = ns(700);
    /**
     * Trap exit and re-entry into the hijacked user-space handler after
     * the NX fault (host-initiated migrations only; this is what makes
     * Host-NxP-Host slower than NxP-Host-NxP in Table III).
     */
    Tick faultTrapExit = ns(700);
    /** ioctl() entry from user space into the migration driver. */
    Tick ioctlEntry = ns(800);
    /** ioctl() return back to user space. */
    Tick ioctlExit = ns(400);
    /** Descriptor packaging inside the driver (task_struct reads etc.). */
    Tick descriptorPack = ns(700);
    /** Suspend thread (TASK_KILLABLE) and context switch away. */
    Tick suspendSwitch = ns(2200);
    /** IRQ handler: find task by PID and mark runnable. */
    Tick irqWake = ns(1600);
    /** Scheduler latency from wakeup until the thread runs again. */
    Tick wakeupToRun = ns(4600);

    // --- NxP runtime charges (scheduler + migration handler) -----------
    /** NxP scheduler: poll loop iteration reading the DMA status reg. */
    std::uint32_t nxpPollCycles = 24;
    /** NxP context switch (save/restore integer state) in cycles. */
    std::uint32_t nxpCtxSwitchCycles = 96;
    /** NxP descriptor read/parse or build/write, in cycles. */
    std::uint32_t nxpDescriptorCycles = 120;

    // --- Host runtime charges (user-space migration handler) -----------
    /** Host migration handler prologue/argument gathering in cycles. */
    std::uint32_t hostHandlerCycles = 320;
    /** First-migration NxP stack allocation (one-time, per thread). */
    Tick nxpStackAllocate = us(4);

    /** Clock domain helper for the host. */
    ClockDomain hostClock() const { return ClockDomain(hostFreqHz); }
    /** Clock domain helper for the NxP. */
    ClockDomain nxpClock() const { return ClockDomain(nxpFreqHz); }

    /** Cost of a DMA burst of @p bytes. */
    Tick
    dmaTransfer(std::uint64_t bytes) const
    {
        return dmaSetup + bytes * dmaPerByte;
    }

    /**
     * Cost of one coalesced burst of @p descs chained descriptors
     * totalling @p bytes: one setup, one chain fetch per extra
     * descriptor, and the wire time. With descs == 1 this is exactly
     * dmaTransfer(bytes).
     */
    Tick
    dmaBurstTransfer(unsigned descs, std::uint64_t bytes) const
    {
        return dmaSetup + (descs > 0 ? descs - 1 : 0) * dmaChainPerDescriptor
               + bytes * dmaPerByte;
    }
};

} // namespace flick

#endif // FLICK_SIM_TIMING_CONFIG_HH
