/**
 * @file
 * Deterministic fault injection for the simulated fabric.
 *
 * Real PCIe links flip bits, lose MSIs and add jitter; the paper's
 * protocol assumes they never do. The ChaosController is the single
 * source of injected fabric faults: the DMA engines and the interrupt
 * controller consult it at well-defined points, and every decision is
 * drawn from one seeded PRNG so any failing run reproduces exactly from
 * its seed. With chaos disabled no PRNG draw ever happens and every
 * consultation is a constant "no", keeping the fault-free simulation
 * tick-for-tick identical to a build without the chaos layer.
 */

#ifndef FLICK_SIM_CHAOS_HH
#define FLICK_SIM_CHAOS_HH

#include <cstdint>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace flick
{

/**
 * Fault classes and rates of the chaos layer. All rates are
 * probabilities in [0, 1] evaluated independently per opportunity (per
 * DMA transfer, per interrupt).
 */
struct ChaosConfig
{
    /** Master switch; when false no fault is ever injected. */
    bool enabled = false;

    /** PRNG seed; one seed fully determines every injected fault. */
    std::uint64_t seed = 1;

    /** Probability a DMA burst lands with corrupted payload bytes. */
    double corruptRate = 0.0;

    /** Bits flipped per corruption event (1..corruptBits). */
    unsigned corruptBits = 4;

    /** Probability a device interrupt is silently dropped. */
    double dropIrqRate = 0.0;

    /** Probability a device interrupt is delivered twice. */
    double duplicateIrqRate = 0.0;

    /** Probability a DMA transfer or interrupt is delayed. */
    double delayRate = 0.0;

    /** Upper bound of the injected extra latency. */
    Tick maxExtraDelay = us(5);
};

/**
 * Draws and counts fabric-fault decisions. One instance per simulated
 * machine, shared by every DMA engine and the interrupt controller, so
 * the draw sequence is a deterministic function of (seed, event order).
 */
class ChaosController
{
  public:
    explicit ChaosController(const ChaosConfig &config = {})
        : _config(config), _rng(config.seed), _stats("chaos")
    {}

    bool enabled() const { return _config.enabled; }
    const ChaosConfig &config() const { return _config; }
    std::uint64_t seed() const { return _config.seed; }

    /** Should this DMA burst land corrupted? */
    bool
    shouldCorruptDma()
    {
        return roll(_config.corruptRate, "dma_corruptions");
    }

    /** How many bits to flip in a corrupted burst (>= 1). */
    unsigned
    corruptBitCount()
    {
        unsigned max = _config.corruptBits ? _config.corruptBits : 1;
        return 1 + static_cast<unsigned>(_rng.below(max));
    }

    /** Uniform value in [0, bound); for picking corruption sites. */
    std::uint64_t pick(std::uint64_t bound) { return _rng.below(bound); }

    /** Should this interrupt be dropped? */
    bool
    shouldDropIrq()
    {
        return roll(_config.dropIrqRate, "irqs_dropped");
    }

    /** Should this interrupt be delivered twice? */
    bool
    shouldDuplicateIrq()
    {
        return roll(_config.duplicateIrqRate, "irqs_duplicated");
    }

    /** Extra latency for this DMA transfer (0 when none injected). */
    Tick
    extraDmaDelay()
    {
        return extraDelay("dma_delays", "dma_delay_ticks");
    }

    /** Extra latency for this interrupt delivery (0 when none). */
    Tick
    extraIrqDelay()
    {
        return extraDelay("irq_delays", "irq_delay_ticks");
    }

    /** Total faults injected across every class. */
    std::uint64_t faultsInjected() const;

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    /** One Bernoulli draw; never draws when chaos is disabled. */
    bool roll(double rate, const char *counter);

    Tick extraDelay(const char *counter, const char *tick_counter);

    ChaosConfig _config;
    Rng _rng;
    StatGroup _stats;
};

} // namespace flick

#endif // FLICK_SIM_CHAOS_HH
