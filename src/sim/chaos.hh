/**
 * @file
 * Deterministic fault injection for the simulated fabric.
 *
 * Real PCIe links flip bits, lose MSIs and add jitter — and real
 * endpoints hang, crash and stall: the paper's protocol assumes none of
 * it ever happens. The ChaosController is the single source of injected
 * faults, fabric (corruption, lost/duplicated MSIs, latency) and
 * endpoint (wedged NxP cores, device death, stuck DMA engines) alike:
 * the DMA engines, the interrupt controller and the migration engine
 * consult it at well-defined points, and every decision is drawn from
 * one seeded PRNG so any failing run reproduces exactly from its seed.
 * With chaos disabled no PRNG draw ever happens and every
 * consultation is a constant "no", keeping the fault-free simulation
 * tick-for-tick identical to a build without the chaos layer.
 */

#ifndef FLICK_SIM_CHAOS_HH
#define FLICK_SIM_CHAOS_HH

#include <cstdint>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace flick
{

/**
 * Fault classes and rates of the chaos layer. All rates are
 * probabilities in [0, 1] evaluated independently per opportunity (per
 * DMA transfer, per interrupt).
 */
struct ChaosConfig
{
    /** Master switch; when false no fault is ever injected. */
    bool enabled = false;

    /** PRNG seed; one seed fully determines every injected fault. */
    std::uint64_t seed = 1;

    /** Probability a DMA burst lands with corrupted payload bytes. */
    double corruptRate = 0.0;

    /** Bits flipped per corruption event (1..corruptBits). */
    unsigned corruptBits = 4;

    /** Probability a device interrupt is silently dropped. */
    double dropIrqRate = 0.0;

    /** Probability a device interrupt is delivered twice. */
    double duplicateIrqRate = 0.0;

    /** Probability a DMA transfer or interrupt is delayed. */
    double delayRate = 0.0;

    /** Upper bound of the injected extra latency. */
    Tick maxExtraDelay = us(5);

    // --- Endpoint fault classes (the devices, not the fabric) ---------
    //
    // The fabric classes above are always recoverable: the hardened
    // protocol retransmits until the descriptor gets through. Endpoint
    // faults are not — a wedged core or a dead device never answers —
    // so they exercise the health watchdog, call-failure and
    // host-fallback paths instead of NAK/retransmit.

    /** Probability an NxP core wedges mid-segment (guest hang). */
    double wedgeNxpRate = 0.0;

    /** Instructions a wedging segment retires before hanging. */
    unsigned wedgeProgressInstructions = 16;

    /** Probability an NxP device dies at a descriptor pickup. */
    double deviceDeathRate = 0.0;

    /** Probability a DMA transfer sticks and never completes. */
    double stuckDmaRate = 0.0;
};

/**
 * Draws and counts fabric-fault decisions. One instance per simulated
 * machine, shared by every DMA engine and the interrupt controller, so
 * the draw sequence is a deterministic function of (seed, event order).
 */
class ChaosController
{
  public:
    explicit ChaosController(const ChaosConfig &config = {})
        : _config(config), _rng(config.seed), _stats("chaos")
    {}

    bool enabled() const { return _config.enabled; }
    const ChaosConfig &config() const { return _config; }
    std::uint64_t seed() const { return _config.seed; }

    /** Should this DMA burst land corrupted? */
    bool
    shouldCorruptDma()
    {
        return roll(_config.corruptRate, "dma_corruptions");
    }

    /** How many bits to flip in a corrupted burst (>= 1). */
    unsigned
    corruptBitCount()
    {
        unsigned max = _config.corruptBits ? _config.corruptBits : 1;
        return 1 + static_cast<unsigned>(_rng.below(max));
    }

    /** Uniform value in [0, bound); for picking corruption sites. */
    std::uint64_t pick(std::uint64_t bound) { return _rng.below(bound); }

    /** Should this interrupt be dropped? */
    bool
    shouldDropIrq()
    {
        return roll(_config.dropIrqRate, "irqs_dropped");
    }

    /** Should this interrupt be delivered twice? */
    bool
    shouldDuplicateIrq()
    {
        return roll(_config.duplicateIrqRate, "irqs_duplicated");
    }

    /** Extra latency for this DMA transfer (0 when none injected). */
    Tick
    extraDmaDelay()
    {
        return extraDelay("dma_delays", "dma_delay_ticks");
    }

    /** Extra latency for this interrupt delivery (0 when none). */
    Tick
    extraIrqDelay()
    {
        return extraDelay("irq_delays", "irq_delay_ticks");
    }

    /** Any endpoint fault class configured to fire? The migration
     *  engine arms its device-health heartbeat only when this is true
     *  (or a call deadline is set), keeping the fault-free event stream
     *  untouched. */
    bool
    endpointFaultsEnabled() const
    {
        return _config.enabled &&
               (_config.wedgeNxpRate > 0.0 ||
                _config.deviceDeathRate > 0.0 ||
                _config.stuckDmaRate > 0.0);
    }

    /** Should this NxP segment wedge (hang forever mid-function)? */
    bool
    shouldWedgeNxpCore()
    {
        return roll(_config.wedgeNxpRate, "nxp_wedges");
    }

    /** Instructions the wedging segment retires before hanging. */
    unsigned
    wedgeProgress() const
    {
        return _config.wedgeProgressInstructions;
    }

    /** Should this descriptor pickup kill the device outright? */
    bool
    shouldKillNxpDevice()
    {
        return roll(_config.deviceDeathRate, "device_deaths");
    }

    /** Should this DMA transfer stick and never complete? */
    bool
    shouldStickDma()
    {
        return roll(_config.stuckDmaRate, "stuck_dmas");
    }

    /** Total faults injected across every class. */
    std::uint64_t faultsInjected() const;

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    /** One Bernoulli draw; never draws when chaos is disabled. */
    bool roll(double rate, const char *counter);

    Tick extraDelay(const char *counter, const char *tick_counter);

    ChaosConfig _config;
    Rng _rng;
    StatGroup _stats;
};

} // namespace flick

#endif // FLICK_SIM_CHAOS_HH
