/**
 * @file
 * Deterministic pseudo-random number generation for workload construction.
 *
 * A splitmix64/xoshiro-style generator with explicit seeding so every
 * benchmark and test run is reproducible. Do not use std::rand or
 * non-seeded std::mt19937 anywhere in the simulator.
 */

#ifndef FLICK_SIM_RANDOM_HH
#define FLICK_SIM_RANDOM_HH

#include <cstdint>

namespace flick
{

/**
 * A small, fast, deterministic 64-bit PRNG (xorshift64* family).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : _state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = _state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        _state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t _state;
};

} // namespace flick

#endif // FLICK_SIM_RANDOM_HH
