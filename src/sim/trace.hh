/**
 * @file
 * Structured event tracing and latency attribution for the migration path.
 *
 * The Tracer records a timestamped TraceEvent at every protocol milestone
 * of a cross-ISA call — NX fault entry, descriptor build, DMA start and
 * completion, MSI delivery, NxP dispatch, function entry/exit, return
 * descriptor, future completion — plus gauge samples (ring occupancy, DMA
 * queue depth, in-flight calls) taken at those same points.
 *
 * Attribution model: the milestones of one call form a chain in time, and
 * each milestone *opens* a phase that the next milestone *closes*. The
 * interval between two consecutive milestones is charged to the phase the
 * earlier one opened, so the per-call phase durations sum exactly to the
 * end-to-end latency by construction — the property bench_table3_breakdown
 * and tests/trace_test.cpp validate. Closed intervals feed per-phase
 * histograms (count / total / min / max / log2 buckets) that dumpBreakdown()
 * renders as a Table-III-style decomposition.
 *
 * The Tracer is strictly passive: it never schedules events on the
 * EventQueue and never alters component behaviour, so a traced run is
 * tick-for-tick identical to an untraced one. When disabled (the default),
 * every emit path returns before touching any container — zero allocations,
 * same discipline the chaos and heartbeat layers follow (DESIGN.md §10).
 */

#ifndef FLICK_SIM_TRACE_HH
#define FLICK_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/ticks.hh"

namespace flick
{

/**
 * Protocol milestones instrumented along the migration path. Each
 * milestone both closes the call's currently open phase and (except the
 * terminal ones) opens the phase tracePointPhase() maps it to. The
 * kernel* entries are instantaneous markers that do not shift phases.
 */
enum class TracePoint : std::uint8_t
{
    callEntry,      ///< submit()-ed call starts executing on the host
    hostNxFault,    ///< host core hits the NX fault on an NxP symbol
    hostDescBuild,  ///< host kernel starts packing a descriptor
    dmaToNxpStart,  ///< h2d descriptor handed to the DMA engine
    dmaToNxpDone,   ///< h2d DMA complete; doorbell visible to the NxP
    nxpCallStart,   ///< NxP handler dispatches the migrated function
    nxpResume,      ///< NxP resumes a frame after a nested return
    nxpFault,       ///< NxP core faults on a host symbol (return/call-back)
    nxpDescBuild,   ///< NxP handler starts packing a return/call descriptor
    dmaToHostStart, ///< d2h descriptor handed to the DMA engine
    dmaToHostDone,  ///< d2h DMA complete; MSI raised toward the host
    hostWake,       ///< host IRQ handler wakes the suspended task
    hostCallStart,  ///< host dispatches a callback (or fallback twin)
    hostResume,     ///< host resumes the original frame after the return
    callComplete,   ///< future completed; closes the call
    callFailed,     ///< call failed (deadline/cancel/device lost)
    kernelSuspend,  ///< instant: kernel suspends a task for migration
    kernelWake,     ///< instant: kernel marks a suspended task runnable
    kernelResume,   ///< instant: kernel switches a woken task back in
    specLaunch,     ///< instant: host twin launched speculatively (§16)
    specCommit,     ///< instant: speculative host run committed (host won)
    specSquash,     ///< instant: speculation squashed (NxP won / abort)
    specConflict,   ///< instant: read/write conflict killed the speculation
};

/** Latency-attribution phases a round trip decomposes into (Table III). */
enum class TracePhase : std::uint8_t
{
    hostExec,      ///< executing on the host core
    nxFault,       ///< NX-fault service + trap exit (either side)
    hostDescBuild, ///< host kernel: ioctl entry, packing, suspend
    dmaToNxp,      ///< descriptor burst DMA, host -> NxP
    nxpDispatch,   ///< NxP poll/pickup until the handler runs the call
    nxpExec,       ///< executing on the NxP core
    nxpDescBuild,  ///< NxP handler: descriptor build + doorbell
    dmaToHost,     ///< descriptor burst DMA, NxP -> host
    msiDelivery,   ///< MSI propagation + host IRQ entry + task wake
    hostDispatch,  ///< scheduler wakeup-to-run + ioctl exit
    none,          ///< terminal / instant points open no phase
};

/** Number of real phases (excludes TracePhase::none). */
constexpr unsigned numTracePhases = 10;

/** Gauges sampled at trace points (exported as Perfetto counter tracks). */
enum class TraceGauge : std::uint8_t
{
    h2dRing,       ///< host->device descriptor-ring occupancy (per device)
    d2hRing,       ///< device->host descriptor-ring occupancy (per device)
    dmaQueue,      ///< DMA engine queue depth incl. active (per engine)
    inFlightCalls, ///< calls submitted but not yet completed/failed
};

/** Stable lowerCamel names, matching the journal/stat naming style. */
const char *tracePointName(TracePoint p);
const char *tracePhaseName(TracePhase ph);
const char *traceGaugeName(TraceGauge g);

/** Phase a milestone opens (none for terminal and instant points). */
TracePhase tracePointPhase(TracePoint p);

/** One recorded milestone or instant. */
struct TraceEvent
{
    Tick tick = 0;            ///< simulated time of the milestone
    TracePoint point{};       ///< which milestone
    std::uint8_t device = 0;  ///< device index (0 for host-side points)
    int pid = 0;              ///< task the call belongs to
    std::uint64_t callId = 0; ///< generation token following the call
    std::uint64_t arg = 0;    ///< point-specific detail (target VA, ...)
};

/** One gauge sample. */
struct TraceGaugeSample
{
    Tick tick = 0;
    TraceGauge gauge{};
    std::uint8_t device = 0; ///< device / engine index the gauge belongs to
    std::uint64_t value = 0;
};

/** Aggregated per-phase latency histogram. */
struct TracePhaseStats
{
    std::uint64_t count = 0; ///< closed intervals attributed to the phase
    Tick total = 0;          ///< sum of interval lengths
    Tick min = maxTick;      ///< shortest interval (maxTick when count==0)
    Tick max = 0;            ///< longest interval
    /// log2 buckets over the interval length in nanoseconds:
    /// bucket[i] counts intervals with ns in [2^(i-1), 2^i), bucket[0] < 1ns.
    std::array<std::uint64_t, 40> buckets{};

    double meanUs() const
    {
        return count ? ticksToUs(total) / static_cast<double>(count) : 0.0;
    }
};

/** Retained per-call summary: start/end plus the phase decomposition. */
struct TraceCallSummary
{
    int pid = 0;
    Tick start = 0; ///< callEntry time
    Tick end = 0;   ///< callComplete/callFailed time (0 while in flight)
    bool failed = false;
    std::array<Tick, numTracePhases> phaseTicks{}; ///< indexed by TracePhase

    /** Sum of all phase durations; equals end-start for finished calls. */
    Tick
    phaseSum() const
    {
        Tick s = 0;
        for (Tick t : phaseTicks)
            s += t;
        return s;
    }
};

/**
 * The event-tracing and latency-attribution subsystem.
 *
 * Components hold a `Tracer *` and call point()/gauge() at milestones;
 * both are no-ops returning before any allocation unless enable()-d
 * (SystemConfig::withTrace()). The FlickSystem owns one Tracer and
 * exposes it via debug().trace().
 */
class Tracer
{
  public:
    /** Whether tracing is recording. */
    bool on() const { return _on; }

    /** Start recording (SystemConfig::withTrace() calls this). */
    void enable() { _on = true; }

    /**
     * Drop all recorded events, gauges, histograms and call summaries
     * (recording state is kept). Benches use this to exclude warmup.
     */
    void reset();

    /**
     * Record milestone @p p for call @p callId of task @p pid at @p now.
     * Closes the call's open phase, opens the milestone's phase, and
     * appends a TraceEvent. Points for calls that never hit callEntry or
     * already finished are ignored (stale descriptors of dead calls).
     */
    void
    point(TracePoint p, Tick now, int pid, std::uint64_t call_id,
          unsigned device = 0, std::uint64_t arg = 0)
    {
        if (!_on)
            return;
        record(p, now, pid, call_id, device, arg);
    }

    /** Record gauge sample @p value for @p g on @p device at @p now. */
    void
    gauge(TraceGauge g, Tick now, unsigned device, std::uint64_t value)
    {
        if (!_on)
            return;
        recordGauge(g, now, device, value);
    }

    /** All recorded milestones, in emission order. */
    const std::vector<TraceEvent> &events() const { return _events; }

    /** All recorded gauge samples, in emission order. */
    const std::vector<TraceGaugeSample> &gauges() const { return _gauges; }

    /** Per-phase aggregate histogram. */
    const TracePhaseStats &
    phaseStats(TracePhase ph) const
    {
        return _phases[static_cast<unsigned>(ph)];
    }

    /** Retained call summaries, keyed by callId (sorted for determinism). */
    const std::map<std::uint64_t, TraceCallSummary> &calls() const
    {
        return _calls;
    }

    /**
     * Write a Chrome/Perfetto `trace_event` JSON document: one process
     * per machine, one track per core / DMA engine, "X" slices for
     * phases, flow arrows ("s"/"t"/"f") following callId across
     * machines, counter tracks for the gauges and instant markers for
     * the kernel points. Load in ui.perfetto.dev or chrome://tracing.
     */
    void dumpJson(std::ostream &os) const;

    /** Convenience: dumpJson to @p path; returns false on I/O failure. */
    bool dumpJson(const std::string &path) const;

    /** Print the Table-III-style per-phase breakdown (dumpStats hook). */
    void dumpBreakdown(std::ostream &os) const;

  private:
    void record(TracePoint p, Tick now, int pid, std::uint64_t call_id,
                unsigned device, std::uint64_t arg);
    void recordGauge(TraceGauge g, Tick now, unsigned device,
                     std::uint64_t value);
    void closePhase(std::uint64_t call_id, Tick now);

    /** The call's currently open phase, opened at tick `since`. */
    struct OpenPhase
    {
        TracePhase phase = TracePhase::none;
        Tick since = 0;
    };

    bool _on = false;
    std::vector<TraceEvent> _events;
    std::vector<TraceGaugeSample> _gauges;
    std::unordered_map<std::uint64_t, OpenPhase> _open;
    std::array<TracePhaseStats, numTracePhases> _phases{};
    std::map<std::uint64_t, TraceCallSummary> _calls;
};

} // namespace flick

#endif // FLICK_SIM_TRACE_HH
