#include "sim/load_gen.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace flick
{

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::poisson: return "poisson";
      case ArrivalKind::bursty: return "bursty";
      case ArrivalKind::diurnal: return "diurnal";
    }
    return "?";
}

double
LoadGenerator::perTick(double rate_per_sec)
{
    // One tick is one picosecond (sim/ticks.hh).
    return rate_per_sec / 1e12;
}

namespace
{

/**
 * One exponentially distributed gap at @p rate_per_tick. real() is in
 * [0, 1); guard the log away from -inf and round to at least one tick
 * so the schedule always advances.
 */
Tick
expGap(Rng &rng, double rate_per_tick)
{
    double u = rng.real();
    if (u >= 1.0)
        u = 0.999999999;
    double gap = -std::log(1.0 - u) / rate_per_tick;
    if (gap < 1.0)
        gap = 1.0;
    if (gap >= 9e18)
        return maxTick;
    return static_cast<Tick>(gap);
}

void
fanOut(std::vector<Arrival> &out, const LoadGenConfig &cfg,
       const Arrival &parent)
{
    if (parent.depth >= cfg.fanoutDepth || !cfg.fanout)
        return;
    for (unsigned c = 0; c < cfg.fanout; ++c) {
        Arrival child;
        child.when = parent.when + cfg.fanoutGap * (c + 1);
        child.seq = parent.seq;
        child.depth = parent.depth + 1;
        child.sibling = c;
        if (child.when < cfg.horizon) {
            out.push_back(child);
            fanOut(out, cfg, child);
        }
    }
}

} // namespace

std::vector<Arrival>
LoadGenerator::generate() const
{
    const LoadGenConfig &cfg = _config;
    if (cfg.ratePerSec <= 0.0 || !cfg.horizon)
        return {};
    double base = perTick(cfg.ratePerSec);
    Rng rng(cfg.seed);
    std::vector<Arrival> out;
    std::uint64_t seq = 0;

    switch (cfg.kind) {
      case ArrivalKind::poisson: {
        Tick t = 0;
        for (;;) {
            Tick gap = expGap(rng, base);
            if (gap == maxTick || cfg.horizon - t <= gap)
                break;
            t += gap;
            out.push_back(Arrival{t, seq++, 0, 0});
        }
        break;
      }
      case ArrivalKind::bursty: {
        // Markov-modulated Poisson: alternate calm (base rate) and
        // burst (base * burstFactor) states with exponential dwell
        // times. Dwells default to a tenth of the horizon.
        Tick calm_dwell = cfg.calmDwell ? cfg.calmDwell : cfg.horizon / 10;
        Tick burst_dwell =
            cfg.burstDwell ? cfg.burstDwell : cfg.horizon / 10;
        double dwell_calm = 1.0 / static_cast<double>(calm_dwell);
        double dwell_burst = 1.0 / static_cast<double>(burst_dwell);
        bool bursting = false;
        Tick t = 0;
        Tick flip = expGap(rng, dwell_calm);
        for (;;) {
            double rate = bursting ? base * cfg.burstFactor : base;
            Tick gap = expGap(rng, rate);
            if (gap == maxTick || cfg.horizon - t <= gap)
                break;
            t += gap;
            while (t >= flip) {
                bursting = !bursting;
                flip += expGap(rng, bursting ? dwell_burst : dwell_calm);
            }
            out.push_back(Arrival{t, seq++, 0, 0});
        }
        break;
      }
      case ArrivalKind::diurnal: {
        // Thinning: draw a Poisson stream at the peak rate and keep
        // each arrival with probability rate(t)/peak, where rate(t)
        // traces one sinusoidal period with its peak mid-horizon.
        double peak = base * 2.0;
        Tick t = 0;
        for (;;) {
            Tick gap = expGap(rng, peak);
            if (gap == maxTick || cfg.horizon - t <= gap)
                break;
            t += gap;
            double phase = static_cast<double>(t) /
                           static_cast<double>(cfg.horizon);
            // 0 at both ends, 1 mid-horizon; mean over the period is
            // 1/2, so the stream's mean rate is `base`.
            double keep = 0.5 - 0.5 * std::cos(2.0 * M_PI * phase);
            if (rng.real() < keep)
                out.push_back(Arrival{t, seq++, 0, 0});
        }
        break;
      }
    }

    if (cfg.fanout && cfg.fanoutDepth) {
        std::size_t roots = out.size();
        for (std::size_t i = 0; i < roots; ++i) {
            // Copy the root: fanOut grows `out`, which would leave a
            // reference into it dangling across the reallocation.
            Arrival root = out[i];
            fanOut(out, cfg, root);
        }
        std::stable_sort(out.begin(), out.end(),
                         [](const Arrival &a, const Arrival &b) {
                             return a.when < b.when;
                         });
    }
    return out;
}

} // namespace flick
