/**
 * @file
 * Open-loop traffic generation (DESIGN.md §14).
 *
 * Closed-loop drivers (a fixed thread pool that submits, waits,
 * resubmits) self-throttle under overload: when the system slows down,
 * so does the offered load, and the collapse the QoS layer exists to
 * survive never shows up. The LoadGenerator models an *open-loop*
 * client population instead: arrivals happen at simulated-clock times
 * drawn from a seeded stochastic process, independent of whether the
 * system kept up with the previous ones.
 *
 * The generator is pure: it turns (config, seed) into a deterministic
 * arrival schedule and knows nothing about the engine. Callers walk the
 * schedule and submit calls when the simulated clock reaches each
 * arrival (bench/bench_slo.cpp is the canonical driver). Determinism
 * matters — the SLO gates compare QoS-on and QoS-off runs under the
 * byte-identical arrival sequence.
 *
 * Three arrival processes:
 *  - poisson: exponential inter-arrival gaps at a fixed mean rate; the
 *    memoryless baseline of every open-loop benchmark.
 *  - bursty:  a two-state Markov-modulated Poisson process; the rate
 *    alternates between the base rate and burstFactor times it, with
 *    exponentially distributed state dwell times. This is the "noisy
 *    neighbor" shape.
 *  - diurnal: the rate follows one sinusoidal period over the horizon
 *    (trough at both ends, peak in the middle), thinned from a Poisson
 *    stream at the peak rate.
 *
 * Each arrival can fan out into a small call tree (fanout children per
 * node, fanoutDepth levels), modelling a front-end request that spawns
 * dependent sub-calls; children carry their root's sequence number.
 */

#ifndef FLICK_SIM_LOAD_GEN_HH
#define FLICK_SIM_LOAD_GEN_HH

#include <cstdint>
#include <vector>

#include "sim/random.hh"
#include "sim/ticks.hh"

namespace flick
{

/** Arrival-process shapes understood by the LoadGenerator. */
enum class ArrivalKind
{
    poisson, //!< Fixed-rate exponential gaps.
    bursty,  //!< Two-state Markov-modulated Poisson (on/off bursts).
    diurnal, //!< Sinusoidal rate over the horizon, peak in the middle.
};

/** Printable arrival-kind name. */
const char *arrivalKindName(ArrivalKind kind);

/** Tunables of one generated arrival schedule. */
struct LoadGenConfig
{
    ArrivalKind kind = ArrivalKind::poisson;
    /** Mean arrival rate, in calls per simulated second. */
    double ratePerSec = 1000.0;
    /** Schedule horizon: arrivals are generated in [0, horizon). */
    Tick horizon = 0;
    /** PRNG seed; equal (config, seed) pairs give equal schedules. */
    std::uint64_t seed = 1;
    /** bursty: burst-state rate multiplier (rate * burstFactor). */
    double burstFactor = 4.0;
    /** bursty: mean dwell time in the calm state. */
    Tick calmDwell = 0;
    /** bursty: mean dwell time in the burst state. */
    Tick burstDwell = 0;
    /** Children spawned per tree node (0 = flat arrivals, no trees). */
    unsigned fanout = 0;
    /** Tree depth below the root (0 = flat; 1 = root + children; ...). */
    unsigned fanoutDepth = 0;
    /** Gap between a parent arrival and each child it fans out into. */
    Tick fanoutGap = 0;
};

/** One scheduled call arrival. */
struct Arrival
{
    Tick when = 0;     //!< Simulated time the call arrives.
    std::uint64_t seq = 0; //!< Root-request sequence number.
    unsigned depth = 0;    //!< 0 for roots, >0 for fanned-out children.
    unsigned sibling = 0;  //!< Index among the parent's children.
};

/**
 * Deterministic open-loop arrival-schedule generator. generate() is a
 * pure function of the config; the returned schedule is sorted by time.
 */
class LoadGenerator
{
  public:
    explicit LoadGenerator(LoadGenConfig config) : _config(config) {}

    /** The full arrival schedule over [0, config.horizon). */
    std::vector<Arrival> generate() const;

    /** The configured mean rate converted to arrivals per tick. */
    static double perTick(double rate_per_sec);

  private:
    LoadGenConfig _config;
};

} // namespace flick

#endif // FLICK_SIM_LOAD_GEN_HH
