#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace flick
{

EventQueue::EventId
EventQueue::schedule(Tick when, std::string name, Callback cb)
{
    if (when < _now) {
        panic("event '%s' scheduled in the past (%llu < %llu)",
              name.c_str(), (unsigned long long)when,
              (unsigned long long)_now);
    }
    auto *e = new Entry{when, _seq++, _nextId++, std::move(name),
                        std::move(cb), false};
    _queue.push(e);
    ++_live;
    return e->id;
}

bool
EventQueue::deschedule(EventId id)
{
    // The heap cannot be searched efficiently; mark-and-skip instead.
    // We rebuild a temporary view by scanning the underlying container via
    // a copy of the queue. To keep this O(n) rather than O(n log n), we
    // walk the priority_queue's storage through a protected-member trick.
    struct Opener : std::priority_queue<Entry *, std::vector<Entry *>, Cmp>
    {
        static std::vector<Entry *> &
        container(std::priority_queue<Entry *, std::vector<Entry *>, Cmp> &q)
        {
            return static_cast<Opener &>(q).c;
        }
    };
    for (Entry *e : Opener::container(_queue)) {
        if (e->id == id && !e->cancelled) {
            e->cancelled = true;
            --_live;
            return true;
        }
    }
    return false;
}

EventQueue::Entry *
EventQueue::popNextLive()
{
    while (!_queue.empty()) {
        Entry *e = _queue.top();
        _queue.pop();
        if (e->cancelled) {
            delete e;
            continue;
        }
        return e;
    }
    return nullptr;
}

Tick
EventQueue::nextEventTime() const
{
    // Cancelled entries may sit at the top; peek through them without
    // mutating (rare path, small queues in practice).
    auto copy = _queue;
    while (!copy.empty()) {
        Entry *e = copy.top();
        if (!e->cancelled)
            return e->when;
        copy.pop();
    }
    return maxTick;
}

bool
EventQueue::step()
{
    Entry *e = popNextLive();
    if (!e)
        return false;
    _now = e->when;
    --_live;
    ++_eventsRun;
    Callback cb = std::move(e->cb);
    delete e;
    cb();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit, bool advance_to_limit)
{
    std::uint64_t n = 0;
    while (true) {
        Tick next = nextEventTime();
        if (next == maxTick || next > limit)
            break;
        step();
        ++n;
    }
    if (advance_to_limit && _now < limit)
        _now = limit;
    return n;
}

} // namespace flick
