/**
 * @file
 * Simulated time base.
 *
 * All simulated time in Flick is expressed in Ticks, where one Tick is one
 * picosecond. Picosecond resolution lets us represent both the 2.4 GHz host
 * clock (416.67 ps/cycle) and sub-nanosecond interconnect effects without
 * rounding, while a 64-bit counter still covers ~213 days of simulated time.
 */

#ifndef FLICK_SIM_TICKS_HH
#define FLICK_SIM_TICKS_HH

#include <cstdint>

namespace flick
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert picoseconds to Ticks (identity; for documentation value). */
constexpr Tick
ps(std::uint64_t n)
{
    return n;
}

/** Convert nanoseconds to Ticks. */
constexpr Tick
ns(std::uint64_t n)
{
    return n * 1000;
}

/** Convert microseconds to Ticks. */
constexpr Tick
us(std::uint64_t n)
{
    return n * 1000 * 1000;
}

/** Convert milliseconds to Ticks. */
constexpr Tick
msec(std::uint64_t n)
{
    return n * 1000ull * 1000 * 1000;
}

/** Convert seconds to Ticks. */
constexpr Tick
sec(std::uint64_t n)
{
    return n * 1000ull * 1000 * 1000 * 1000;
}

/** Convert Ticks to (truncated) nanoseconds. */
constexpr std::uint64_t
ticksToNs(Tick t)
{
    return t / 1000;
}

/** Convert Ticks to microseconds as a double (for reporting). */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert Ticks to seconds as a double (for reporting). */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / 1e12;
}

/**
 * A fixed-frequency clock domain.
 *
 * Converts between cycle counts and Ticks for one core or device. The
 * period is stored in picoseconds; frequencies that do not divide 1 THz
 * evenly (e.g. 2.4 GHz) accumulate sub-picosecond error only over billions
 * of cycles, which is far below the fidelity of the latency model.
 */
class ClockDomain
{
  public:
    /** Construct a clock domain from a frequency in hertz. */
    constexpr explicit ClockDomain(std::uint64_t freq_hz)
        : _freqHz(freq_hz),
          _periodPs((1000ull * 1000 * 1000 * 1000 + freq_hz / 2) / freq_hz)
    {}

    /** Frequency of this domain in hertz. */
    constexpr std::uint64_t freqHz() const { return _freqHz; }

    /** Period of one cycle, in Ticks. */
    constexpr Tick period() const { return _periodPs; }

    /** Ticks taken by @p n cycles in this domain. */
    constexpr Tick cycles(std::uint64_t n) const { return n * _periodPs; }

    /** Cycles (rounded up) covered by @p t Ticks. */
    constexpr std::uint64_t
    ticksToCycles(Tick t) const
    {
        return (t + _periodPs - 1) / _periodPs;
    }

  private:
    std::uint64_t _freqHz;
    Tick _periodPs;
};

} // namespace flick

#endif // FLICK_SIM_TICKS_HH
