/**
 * @file
 * Lightweight named statistics.
 *
 * Every major component exposes a StatGroup of named counters; the
 * FlickSystem aggregates them for reporting. Counters are plain 64-bit
 * values with optional descriptions, kept simple on purpose — this is the
 * reporting layer, not the timing model.
 */

#ifndef FLICK_SIM_STATS_HH
#define FLICK_SIM_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>

namespace flick
{

/**
 * A named collection of scalar statistics.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Group name used as a prefix when dumping. */
    const std::string &name() const { return _name; }

    /** Increment counter @p key by @p delta (creating it at zero). */
    void
    inc(const std::string &key, std::uint64_t delta = 1)
    {
        _counters[key] += delta;
    }

    /** Set counter @p key to an absolute value. */
    void set(const std::string &key, std::uint64_t v) { _counters[key] = v; }

    /** Value of counter @p key, or 0 if never touched. */
    std::uint64_t
    get(const std::string &key) const
    {
        auto it = _counters.find(key);
        return it == _counters.end() ? 0 : it->second;
    }

    /** Reset all counters to zero (keys are retained). */
    void
    reset()
    {
        for (auto &kv : _counters)
            kv.second = 0;
    }

    /** All counters, in unspecified (hash) order; dump() sorts. */
    const std::unordered_map<std::string, std::uint64_t> &counters() const
    {
        return _counters;
    }

    /**
     * Write "group.key value" lines to @p os, sorted by key so the
     * output is deterministic and diffable regardless of insertion or
     * hash order.
     */
    void dump(std::ostream &os) const;

  private:
    std::string _name;
    std::unordered_map<std::string, std::uint64_t> _counters;
};

} // namespace flick

#endif // FLICK_SIM_STATS_HH
