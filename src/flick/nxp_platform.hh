/**
 * @file
 * The NxP platform control block.
 *
 * Models the FPGA-side device registers of the prototype (Figure 4): the
 * DMA status register the NxP scheduler polls for inbound migration
 * descriptors, the acknowledge register, and the TLB BAR-remap control
 * register written by the host driver at bring-up (Section IV-A). Visible
 * to the NxP at the local control window and to the host through BAR1.
 */

#ifndef FLICK_FLICK_NXP_PLATFORM_HH
#define FLICK_FLICK_NXP_PLATFORM_HH

#include "mem/device.hh"
#include "mem/mem_system.hh"
#include "sim/stats.hh"
#include "vm/mmu.hh"

namespace flick
{

/**
 * Control registers plus the descriptor mailbox bookkeeping.
 */
class NxpPlatform : public MmioDevice
{
  public:
    // Register offsets within the 4 KB control window.
    static constexpr Addr regStatus = 0x00;   //!< RO: pending descriptors.
    static constexpr Addr regAck = 0x08;      //!< WO: consume one.
    static constexpr Addr regBarRemap = 0x10; //!< WO: TLB remap offset.

    explicit NxpPlatform(MemSystem &mem, unsigned device = 0)
        : _mem(mem), _device(device),
          _stats(device == 0
                     ? "nxp_platform"
                     : "nxp" + std::to_string(device + 1) + "_platform")
    {
        _mem.mapControlDevice(this, device);
    }

    /** Which NxP device this control block belongs to. */
    unsigned device() const { return _device; }

    /** Attach the NxP core's MMU so regBarRemap can program its TLBs. */
    void setNxpMmu(Mmu *mmu) { _nxpMmu = mmu; }

    /**
     * Local physical address of the inbound descriptor ring (slot 0).
     * The single-slot accessors below are the ring's first slot, which
     * keeps the serial (one in-flight descriptor) layout unchanged.
     */
    Addr
    inboxLocalPa() const
    {
        return _mem.platform().nxpDramLocalBase;
    }

    /** Local physical address of the outbound descriptor ring (slot 0). */
    Addr
    outboxLocalPa() const
    {
        return _mem.platform().nxpDramLocalBase + 0x1000;
    }

    /** Largest ring the 4 KB mailbox windows can hold. */
    static constexpr unsigned maxRingSlots = 32;

    /** Local physical address of inbound ring slot @p slot. */
    Addr
    inboxSlotPa(unsigned slot) const
    {
        return inboxLocalPa() + slot * 128;
    }

    /** Local physical address of outbound ring slot @p slot. */
    Addr
    outboxSlotPa(unsigned slot) const
    {
        return outboxLocalPa() + slot * 128;
    }

    /** First local byte not reserved for the platform (mailboxes etc.). */
    Addr
    reservedLocalEnd() const
    {
        return _mem.platform().nxpDramLocalBase + (1ull << 20);
    }

    /** DMA completion callback: a descriptor landed in the inbox. */
    void
    inboxArrived()
    {
        ++_pending;
        _stats.inc("inbox_arrivals");
    }

    unsigned pendingInbox() const { return _pending; }

    /** Consume one inbound descriptor (the scheduler's ACK). */
    void consumeInbox();

    // MmioDevice interface.
    std::uint64_t mmioRead(Addr offset, unsigned len) override;
    void mmioWrite(Addr offset, std::uint64_t value, unsigned len) override;

    StatGroup &stats() { return _stats; }

  private:
    MemSystem &_mem;
    unsigned _device = 0;
    Mmu *_nxpMmu = nullptr;
    unsigned _pending = 0;
    StatGroup _stats;
};

} // namespace flick

#endif // FLICK_FLICK_NXP_PLATFORM_HH
