#include "flick/heap.hh"

#include "sim/logging.hh"

namespace flick
{

namespace
{

constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace

RegionHeap::RegionHeap(std::string name, VAddr base, std::uint64_t size)
    : _name(std::move(name)), _base(base), _size(size)
{
    _free[base] = size;
}

VAddr
RegionHeap::allocate(std::uint64_t bytes, std::uint64_t align)
{
    if (bytes == 0)
        panic("RegionHeap %s: zero-size allocation", _name.c_str());
    if (align < 16)
        align = 16;
    if ((align & (align - 1)) != 0)
        panic("RegionHeap %s: bad alignment %#llx", _name.c_str(),
              (unsigned long long)align);
    bytes = roundUp(bytes, 16);

    for (auto it = _free.begin(); it != _free.end(); ++it) {
        VAddr start = it->first;
        std::uint64_t len = it->second;
        VAddr aligned = roundUp(start, align);
        std::uint64_t skip = aligned - start;
        if (skip >= len || len - skip < bytes)
            continue;
        _free.erase(it);
        if (skip > 0)
            _free[start] = skip;
        std::uint64_t tail = len - skip - bytes;
        if (tail > 0)
            _free[aligned + bytes] = tail;
        _allocated += bytes;
        _live[aligned] = bytes;
        return aligned;
    }
    fatal("RegionHeap %s exhausted: wanted %llu bytes, %llu of %llu in use",
          _name.c_str(), (unsigned long long)bytes,
          (unsigned long long)_allocated, (unsigned long long)_size);
}

void
RegionHeap::free(VAddr addr)
{
    auto live = _live.find(addr);
    if (live == _live.end())
        panic("RegionHeap %s: free of unallocated %#llx", _name.c_str(),
              (unsigned long long)addr);
    std::uint64_t bytes = live->second;
    _live.erase(live);
    _allocated -= bytes;

    auto next = _free.lower_bound(addr);
    // Merge with successor.
    if (next != _free.end() && next->first == addr + bytes) {
        bytes += next->second;
        next = _free.erase(next);
    }
    // Merge with predecessor.
    if (next != _free.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == addr) {
            prev->second += bytes;
            return;
        }
    }
    _free[addr] = bytes;
}

} // namespace flick
