/**
 * @file
 * The Flick migration engine.
 *
 * Implements the protocol of Section IV-B — the host migration handler
 * (Listing 1), the NxP scheduler and migration handler (Listing 2), the
 * kernel ioctl/suspend/wake path and the descriptor DMA — as an
 * event-driven scheduler multiplexing any number of simulated threads
 * over the host core and the NxP devices:
 *
 *   - A thread enters through submit(), which queues it on the kernel's
 *     host run queue and returns a CallFuture immediately. The host
 *     core dispatches queued threads whenever it goes idle.
 *   - Each core runs one thread's segment at a time (a Core::run()
 *     slice up to the next migration point: trampoline, halt or fetch
 *     fault). Handler and kernel costs are charged by chaining
 *     continuation events from TimingConfig, so a segment plus its
 *     protocol leg occupies the core for exactly the time the serial
 *     protocol would.
 *   - Descriptors travel through per-device, per-direction descriptor
 *     rings (DescriptorRing) instead of single kernel-buffer/inbox
 *     slots, so several threads can be mid-migration on the same link.
 *     Each NxP's scheduler works its inbox ring in FIFO order — its run
 *     list — while threads suspended mid-nested-call park their saved
 *     contexts on their Task.
 *   - A thread's cross-ISA nesting is tracked as a per-task stack of
 *     call frames; returns always route device -> host -> (resume the
 *     suspended host context, or relay to the caller device), which is
 *     also how device-to-device calls bounce through the host kernel
 *     (Section IV-C3).
 *
 * All application instructions execute in the interpreters, and the
 * descriptor bytes really travel through the simulated DMA engines and
 * memories. Because every cost is charged on the owning core's timeline,
 * independent threads overlap: while one thread computes on an NxP, the
 * host core is free to run another thread's handler or segment.
 */

#ifndef FLICK_FLICK_RUNTIME_HH
#define FLICK_FLICK_RUNTIME_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "flick/call_future.hh"
#include "flick/descriptor.hh"
#include "flick/heap.hh"
#include "flick/nxp_platform.hh"
#include "flick/qos.hh"
#include "flick/ring.hh"
#include "policy/cost_model.hh"
#include "isa/core.hh"
#include "mem/dma.hh"
#include "mem/irq.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/timing_config.hh"
#include "sim/trace.hh"

namespace flick
{

class ChaosController;
class PlacementPolicy;
class SpeculationManager;
struct EnginePlacementView;

/**
 * One step of the migration protocol, for the journal.
 *
 * The steps map onto Figure 2's (a)..(g) walkthrough; tests assert the
 * ordering and tools print the trace.
 */
enum class ProtocolStep
{
    hostNxFault,      //!< (a) host fetched NxP text: NX page fault.
    nxpStackAlloc,    //!< first migration: NxP stack allocated.
    hostSendCall,     //!< (a) call descriptor packaged + thread suspended.
    dmaToNxp,         //!< descriptor DMA fired (after the suspend).
    nxpPickup,        //!< (b) NxP scheduler picked the descriptor up.
    nxpCallStart,     //!< (b) target function entered on the NxP.
    nxpFault,         //!< (c) NxP fetched host text: fault.
    nxpSendCall,      //!< (c) NxP-to-host call descriptor sent.
    hostWake,         //!< (d) host woken by the DMA interrupt.
    hostCallStart,    //!< (d) target host function entered.
    hostSendReturn,   //!< (e) host-to-NxP return descriptor sent.
    nxpResume,        //!< (f) NxP resumed the original function.
    nxpSendReturn,    //!< (f) NxP-to-host return descriptor sent.
    hostReturn,       //!< (g) host resumed with the return value.
    hostForward,      //!< kernel forwarded a device-to-device call.
    hostFallback,     //!< failed call re-dispatched to host-ISA text.
    hostSteered,      //!< placement policy ran the host twin instead.
};

/** Printable step name. */
const char *protocolStepName(ProtocolStep step);

/** One journal record. */
struct ProtocolEvent
{
    Tick when;
    ProtocolStep step;
    int pid;
    VAddr addr; //!< Target/fault address where meaningful.
};

/**
 * Health of one NxP device, as the driver's watchdog sees it.
 *
 * healthy --(heartbeat finds outstanding work but no progress)-->
 * suspect --(strike limit reached)--> quarantined. A suspect device
 * that makes progress again returns to healthy; quarantine is
 * terminal: the rings are drained, in-flight calls are failed (or
 * failed over to host text) and new submissions are rejected.
 */
enum class DeviceHealth
{
    healthy,
    suspect,
    quarantined,
};

/** Printable health-state name. */
const char *deviceHealthName(DeviceHealth health);

/**
 * Drives threads across the ISA boundary.
 */
class MigrationEngine
{
  public:
    MigrationEngine(EventQueue &events, MemSystem &mem,
                    const TimingConfig &timing, Kernel &kernel,
                    IrqController &irq, Core &host_core);

    /**
     * Register one NxP device (in device-id order, starting at 0).
     * Any number of devices may be registered; every ring, health
     * record and counter the engine keeps is sized per registration.
     *
     * @param host_staging_pa Host DRAM base of the kernel's outbound
     *        descriptor-staging ring (ring_slots slots of 128 bytes);
     *        slot i DMAs into the device's inbox ring slot i.
     * @param host_inbox_pa Host DRAM base of the inbound ring the
     *        device's outbox slots DMA into.
     * @param irq_vector Host interrupt vector the device raises.
     * @param ring_slots Slots per direction (in-flight descriptor bound).
     * @param freq_hz Device core frequency; 0 inherits TimingConfig's
     *        nxpFreqHz (the homogeneous-fabric default).
     */
    void addNxpDevice(Core &core, NxpPlatform &platform, DmaEngine &dma,
                      RegionHeap &stack_heap, Addr host_staging_pa,
                      Addr host_inbox_pa, unsigned irq_vector,
                      unsigned ring_slots, std::uint64_t freq_hz = 0);

    /**
     * Per-call knobs a submission may carry. Defaults leave the event
     * stream exactly as a plain submit() would.
     */
    struct SubmitOptions
    {
        /**
         * Relative completion deadline for this call; 0 inherits the
         * engine-wide setCallDeadline() value. A nonzero deadline arms
         * the heartbeat watchdog (like setCallDeadline does).
         */
        Tick deadline = 0;
        /**
         * Preferred NxP device for the call's first placement decision,
         * consumed one-shot at the next NX-fault dispatch; -1 = none.
         * An impossible hint (no such device, no text there, or the
         * device is quarantined) is ignored and dispatch proceeds as if
         * no hint were given.
         */
        int placementHint = -1;
    };

    /**
     * Start @p task at @p entry on the host core and return a future
     * that resolves when the entry function returns. The call begins at
     * the current simulated time but makes progress only as the event
     * queue runs (CallFuture::wait() pumps it); submitting never blocks.
     *
     * With admission control enabled (setAdmissionCap) and every
     * non-quarantined device at its in-flight cap, the call is shed:
     * the returned future is already done with status
     * CallStatus::shedLoad and nothing enters the system.
     *
     * @param stack_top Initial host stack pointer.
     */
    CallFuture submit(Task &task, VAddr entry,
                      const std::vector<std::uint64_t> &args,
                      VAddr stack_top, const SubmitOptions &opts);

    /** submit() with default options. */
    CallFuture
    submit(Task &task, VAddr entry,
           const std::vector<std::uint64_t> &args, VAddr stack_top)
    {
        return submit(task, entry, args, stack_top, SubmitOptions());
    }

    /**
     * Blocking convenience: submit() and wait. Kept for callers that
     * want the pre-CallFuture synchronous behavior.
     */
    std::uint64_t runHostFunction(Task &task, VAddr entry,
                                  const std::vector<std::uint64_t> &args,
                                  VAddr stack_top);

    /**
     * Free the NxP stacks @p task accumulated (thread teardown). The
     * task must not be mid-migration.
     */
    void releaseNxpStacks(Task &task);

    /** Run one pending event; false if the queue is empty. */
    bool pump() { return _events.step(); }

    /**
     * Inject extra latency per migration round trip, emulating the
     * prior-work systems of Table II / Figure 5's dashed lines.
     */
    void setExtraRoundTripLatency(Tick t) { _extraRoundTrip = t; }

    /** Bytes of NxP stack allocated per thread on first migration. */
    void setNxpStackBytes(std::uint64_t b) { _nxpStackBytes = b; }

    /**
     * Attach the machine's chaos controller. The engine never draws
     * from it; it only uses it to decide whether to arm the descriptor
     * watchdogs (pointless without fault injection) and to report the
     * chaos seed in unrecoverable-fault diagnostics.
     */
    void setChaos(ChaosController *chaos) { _chaos = chaos; }

    /**
     * Attach the tracer. The engine emits a milestone at every protocol
     * step of every in-flight call plus ring-occupancy / in-flight-call
     * gauges (DESIGN.md §10). Purely passive: the tracer never schedules
     * events, so traced and untraced runs are tick-for-tick identical.
     */
    void setTracer(Tracer *tracer) { _tracer = tracer; }

    /**
     * Consecutive retransmissions tolerated per link before the
     * simulation dies with an unrecoverable-corruption diagnostic.
     */
    void setRetryBudget(unsigned budget) { _retryBudget = budget; }

    // --- Descriptor batching and admission control ----------------------

    /**
     * Enable h2d descriptor batching: a staged descriptor opens a
     * per-device coalescing window (TimingConfig::dmaBatchWindow);
     * descriptors staged for the same device inside the window ship as
     * one chained DMA burst with one doorbell write, charged
     * TimingConfig::dmaBurstTransfer(). Off (the default) every
     * descriptor fires its own burst immediately and the event stream
     * is tick-for-tick identical to the pre-batching engine. Batching
     * trades up to one window of added crossing latency for fewer
     * doorbells under storm load; results are value-identical either
     * way (tests/fabric_scale_test.cpp asserts both properties).
     */
    void setBatching(bool on) { _batching = on; }

    /**
     * Per-device in-flight cap (admission control). While every
     * non-quarantined device's depth (staged + deferred descriptors +
     * running segment) is at or above @p cap, submit() sheds new calls
     * with CallStatus::shedLoad instead of queueing them. Load-aware
     * placement policies also avoid saturated devices (they see
     * DeviceLoad::saturated). 0 (the default) disables the cap and
     * leaves every run tick-for-tick identical to the pre-admission
     * engine.
     */
    void setAdmissionCap(unsigned cap) { _admissionCap = cap; }

    /** The configured admission cap (0 = off). */
    unsigned admissionCap() const { return _admissionCap; }

    // --- Multi-tenant QoS & overload protection (DESIGN.md §14) --------

    /**
     * Configure the per-tenant QoS front door (tenant submission
     * queues, weighted fair dequeue, in-flight budgets and the
     * deadline-aware admission test). With cfg.enabled false (the
     * default) submit() takes exactly the pre-QoS path: no container
     * is touched, no counter is bumped and every run is tick-for-tick
     * identical to a build without the subsystem.
     */
    void setQos(const QosConfig &cfg) { _qos = cfg; }

    /** The active QoS configuration. */
    const QosConfig &qosConfig() const { return _qos; }

    /**
     * Record every QoS front-door decision (admitted / queued / shed /
     * dequeued / cancelled) into arrivalTrace(). Passive debug
     * instrumentation; off (the default) allocates nothing.
     */
    void setArrivalTrace(bool on) { _arrivalTraceOn = on; }

    /** The recorded front-door decisions (setArrivalTrace). */
    const std::vector<QosArrival> &arrivalTrace() const { return _arrivals; }

    /**
     * Register @p cr3 as a tenant (idempotent), assigning tenant ids in
     * registration order — FlickSystem::load() calls this per process,
     * so tenant k is the k-th loaded process and the per-tenant counter
     * suffix "_cr3#k" is stable across runs.
     */
    unsigned registerTenant(Addr cr3);

    /** Tenant id of @p cr3 (registering it on first sight). */
    unsigned tenantIndex(Addr cr3) { return registerTenant(cr3); }

    /** Calls of @p tenant admitted into the engine and not yet retired. */
    unsigned qosInFlight(unsigned tenant) const
    {
        return _tenants.inFlight(tenant);
    }

    /** Calls of @p tenant waiting in its submission queue. */
    unsigned qosQueued(unsigned tenant) const
    {
        return _tenants.queued(tenant);
    }

    /**
     * The per-tenant in-flight budget after capacity-loss scaling:
     * QosConfig::tenantInFlight times the alive fraction of the fabric
     * (a quarantined device shrinks every tenant's budget), never below
     * one.
     */
    unsigned effectiveTenantBudget() const;

    /**
     * The admission test's completion-time estimate for a call by
     * @p cr3 to @p entry: the per-call service estimate (placement
     * policy EWMAs, then the QoS layer's own end-to-end model, then the
     * analytic crossingCostEstimate() floor) plus the tenant's own
     * backlog serialized over the alive share of the fabric. Pure and
     * side-effect free.
     */
    Tick admissionEstimate(Addr cr3, VAddr entry, unsigned tenant) const;

    /** The QoS layer's learned end-to-end cost model. */
    const CallCostModel &qosCostModel() const { return _qosModel; }

    // --- Device health, deadlines and failover -------------------------

    /**
     * Per-call deadline: a submitted call that has not completed after
     * this much simulated time fails with status deadlineExceeded
     * (checked at device-heartbeat granularity). 0 disables deadlines;
     * a nonzero deadline arms the heartbeat, so it perturbs the
     * fault-free event stream — which is why it is opt-in.
     */
    void setCallDeadline(Tick t) { _callDeadline = t; }

    /**
     * Enable the host-native fallback path: a call that fails because
     * its target device is lost is re-dispatched to the function's
     * host-ISA twin (registerHostFallback) instead of failing, when the
     * call's state permits re-execution (a leaf call with no context
     * parked on the dead device).
     */
    void setHostFallback(bool on) { _hostFallback = on; }

    /**
     * Heartbeats in a row without forward progress before an NxP with
     * outstanding work is quarantined (first strike marks it suspect).
     */
    void setHealthStrikeLimit(unsigned strikes)
    {
        _strikeLimit = strikes ? strikes : 1;
    }

    /**
     * Register @p host_va as the host-ISA twin of @p va in address
     * space @p cr3 (the multi-ISA binary's Section 3.3 property: the
     * same function exists as text for every ISA). The engine
     * re-dispatches failed calls to the twin when host fallback is on.
     */
    void
    registerHostFallback(Addr cr3, VAddr va, VAddr host_va)
    {
        _fallback[{cr3, va}] = host_va;
    }

    // --- Placement policy (DESIGN.md §11) ------------------------------

    /**
     * Attach the placement policy consulted at every NX-fault dispatch.
     * nullptr (the default) — and an attached StaticPlacement — keep
     * dispatch on the paper's link-time pinning, tick-for-tick
     * identical to the pre-policy engine. The engine does not own the
     * policy.
     */
    void setPlacementPolicy(PlacementPolicy *policy) { _policy = policy; }

    /**
     * Attach the residency tracker (DESIGN.md §15). The policy view's
     * pageResidency() then answers from its per-page counters; without
     * a tracker the view reports every page unmapped and residency-
     * aware placement degrades to queue-depth balancing. Not owned.
     */
    void setResidencyTracker(ResidencyTracker *tracker)
    {
        _residency = tracker;
    }

    /**
     * Attach the speculation manager (DESIGN.md §16). Low-confidence
     * host-originated calls then race their host twin against the
     * migration and commit whichever side finishes first. Registers the
     * engine's conflict callback on @p spec. nullptr (the default)
     * keeps every spec path unreachable: no flick.spec.* counters, no
     * extra events, tick-for-tick identical runs. Not owned.
     */
    void setSpeculation(SpeculationManager *spec);

    /**
     * Register @p twin_va as @p canonical's text for @p device (the
     * "__dev<k>" twins load() discovers, plus the home symbol itself).
     * A placement policy may re-point a faulted call at any registered
     * device's copy.
     */
    void registerDeviceTwin(Addr cr3, VAddr canonical, unsigned device,
                            VAddr twin_va);

    /**
     * Analytic Host-NxP-Host protocol overhead (fault service through
     * host wakeup, excluding callee execution) from TimingConfig; what
     * ProfileGuidedPlacement subtracts from measured round trips to
     * estimate callee execution time (DESIGN.md §11).
     */
    Tick crossingCostEstimate() const;

    /**
     * Fault/test hook: the device's hardware stops responding from now
     * on (it picks up no descriptors and completes nothing). Detection
     * still happens through the health watchdog, which this arms.
     */
    void killDevice(unsigned device);

    /** Health of @p device as the watchdog currently sees it. */
    DeviceHealth
    deviceHealth(unsigned device)
    {
        return side(device).health;
    }

    /**
     * Cancel the in-flight call of @p pid: its future completes with
     * status cancelled. Returns false if no call is in flight.
     */
    bool cancelCall(int pid);

    /** Current simulated time (CallFuture::waitFor's clock). */
    Tick now() const { return _events.now(); }

    /** Start recording protocol steps (clears any previous journal). */
    void
    enableJournal(bool on = true)
    {
        _journalOn = on;
        _journal.clear();
    }

    /** The recorded protocol steps since enableJournal(). */
    const std::vector<ProtocolEvent> &journal() const { return _journal; }

    StatGroup &stats() { return _stats; }

  private:
    friend struct EnginePlacementView;

    /** "Device" id of the host side in a call frame. */
    static constexpr unsigned hostSide = ~0u;

    /**
     * One level of a thread's cross-ISA nesting: who is running the
     * callee and who is waiting for the return.
     */
    struct CallFrame
    {
        unsigned callee; //!< Device running the called function, or host.
        unsigned caller; //!< Side waiting for the return, or hostSide.
        Tick t0;         //!< Round-trip start (for the ticks stats).
        //! Call target and arguments, recorded when the call descriptor
        //! is built; what the host fallback path re-dispatches. 0 until
        //! the descriptor exists.
        VAddr target = 0;
        std::uint32_t nargs = 0;
        std::array<std::uint64_t, MigrationDescriptor::maxArgs> args{};
        //! Home-symbol VA of the callee (== target unless the placement
        //! policy re-pointed the call at a twin); the cost model's key.
        VAddr canonical = 0;
        //! The placement policy chose host text (vs a quarantine
        //! failover); splits the return-path counters.
        bool steered = false;
    };

    /** Execution state of one in-flight submitted call. */
    struct TaskExec
    {
        Task *task = nullptr;
        std::shared_ptr<CallFutureState> future;
        std::vector<CallFrame> frames;
        //! Generation token. PIDs are reused across calls; continuation
        //! events and descriptors carry (pid, id) and are dropped when
        //! the id no longer matches (the call failed or was cancelled).
        std::uint64_t id = 0;
        //! Absolute completion deadline; 0 = none.
        Tick deadline = 0;
        //! Entry-call parameters, consumed by the first host dispatch.
        VAddr entry = 0;
        std::vector<std::uint64_t> args;
        VAddr stackTop = 0;
        //! Set while a woken descriptor waits for the host core.
        bool pendingWake = false;
        MigrationDescriptor wakeDesc;
        //! Set while a host-fallback re-dispatch waits for the core.
        bool pendingFallback = false;
        //! One-shot device preference (SubmitOptions::placementHint),
        //! consumed by the call's first placement decision; -1 = none.
        int placementHint = -1;
        //! Low-confidence placement armed a speculative host-twin race;
        //! consumed (and cleared) when the call descriptor fires.
        bool specArmed = false;
        //! Host twin VA the armed speculation will run.
        VAddr specTwinVa = 0;
        //! The call passed the QoS front door (its retirement must give
        //! the tenant's in-flight budget back and pump the queues).
        bool qosAdmitted = false;
        //! Tenant id (only meaningful when qosAdmitted).
        unsigned tenant = 0;
        //! Admission time; the QoS cost model's sample starts here.
        Tick admitted = 0;
    };

    /** Everything belonging to one NxP device. */
    struct NxpSide
    {
        Core *core;
        NxpPlatform *platform;
        DmaEngine *dma;
        RegionHeap *stackHeap;
        Addr hostStagingPa;
        Addr hostInboxPa;
        unsigned irqVector;
        //! This device's core clock (addNxpDevice's freq_hz, defaulting
        //! to the TimingConfig-wide nxpFreqHz).
        ClockDomain clock{1'000'000'000ull};
        DescriptorRing h2d; //!< Host staging ring -> device inbox ring.
        DescriptorRing d2h; //!< Device outbox ring -> host inbox ring.
        //! Descriptors waiting for a free slot (ring backpressure).
        std::deque<MigrationDescriptor> h2dDeferred;
        std::deque<MigrationDescriptor> d2hDeferred;

        // --- h2d batching state (setBatching) --------------------------
        //! One staged-but-unfired descriptor in the open batch window.
        struct PendingBurst
        {
            unsigned slot;        //!< Staging/inbox ring slot it sits in.
            int pid;
            std::uint64_t callId;
            DescriptorKind kind;  //!< For per-descriptor journal records.
        };
        //! Descriptors staged during the current window, in ring order.
        std::vector<PendingBurst> h2dBatch;
        bool batchFlushScheduled = false; //!< Window-close event pending.
        //! Bumped by quarantine so a pending window-close event finds
        //! its batch gone and does nothing.
        std::uint64_t batchEpoch = 0;
        bool busy = false;          //!< Core owned by a thread/handler.
        bool kickScheduled = false; //!< Scheduler poll event pending.
        Addr loadedCr3 = 0;         //!< CR3 the device MMU currently holds.

        // --- Device health (heartbeat/progress watchdog) --------------
        DeviceHealth health = DeviceHealth::healthy;
        //! Chaos/test flag: the hardware stopped responding. The
        //! protocol cannot see this directly; the watchdog infers it
        //! from the missing progress.
        bool dead = false;
        //! Heartbeats in a row with outstanding work but no progress.
        unsigned strikes = 0;
        //! Bumped on every observable step the device completes
        //! (descriptor accepted, segment retired, DMA landed).
        std::uint64_t progress = 0;
        //! progress as of the previous heartbeat.
        std::uint64_t lastProgress = 0;
        //! When the segment occupying the core will retire; a busy core
        //! before this tick is computing, not wedged.
        Tick segmentEnd = 0;

        // --- Link integrity state (sequence numbers, retry budgets) ---
        std::uint64_t h2dSendSeq = 0;   //!< Last seq sent host->device.
        std::uint64_t h2dAcceptSeq = 0; //!< Last seq accepted by device.
        std::uint64_t d2hSendSeq = 0;   //!< Last seq sent device->host.
        std::uint64_t d2hAcceptSeq = 0; //!< Last seq accepted by host.
        unsigned h2dRetries = 0; //!< Consecutive NAKs, host->device link.
        unsigned d2hRetries = 0; //!< Consecutive NAKs, device->host link.
        //! Descriptors whose d2h DMA landed but are not yet serviced;
        //! the guard that makes duplicated or stale MSIs harmless.
        unsigned d2hLanded = 0;
    };

    using Cont = std::function<void()>;

    // --- Host-core scheduling -----------------------------------------

    /** Schedule a host dispatch attempt if the core might be free. */
    void kickHost();
    /** Pop the next runnable thread and put it on the host core. */
    void dispatchHost();
    /** Release the host core and look for more work. */
    void releaseHost();

    // --- QoS front door (DESIGN.md §14) --------------------------------

    /** One call parked in a tenant's submission queue. */
    struct QosPending
    {
        Task *task = nullptr;
        VAddr entry = 0;
        std::vector<std::uint64_t> args;
        VAddr stackTop = 0;
        int placementHint = -1;
        //! Absolute deadline fixed at submit time: queueing delay burns
        //! deadline budget, which the dequeue-time re-check observes.
        Tick absDeadline = 0;
        Tick enqueued = 0;
        std::shared_ptr<CallFutureState> future;
    };

    /**
     * Complete a refused call on the spot: the returned future is done
     * with CallStatus::shedLoad and @p reason. Never allocates a call
     * frame, touches a ring staging slot or schedules an event — the
     * future is the only thing created (asserted by tests/qos_test.cpp).
     */
    CallFuture shedFuture(Task &task, ShedReason reason);

    /**
     * The pre-QoS submit() body: create the TaskExec and hand the task
     * to the host scheduler. @p state reuses a queued call's future
     * (so copies handed out at submit time observe the completion);
     * nullptr makes a fresh one.
     */
    CallFuture admitCall(Task &task, VAddr entry,
                         const std::vector<std::uint64_t> &args,
                         VAddr stack_top, Tick abs_deadline,
                         int placement_hint,
                         std::shared_ptr<CallFutureState> state);

    /**
     * Hand freed capacity to the tenant queues: weighted-fair dequeue
     * while any tenant with queued work is under its effective budget
     * (and the legacy fabric cap, when configured, is not saturated).
     * Re-checks deadline feasibility with the time burned queueing.
     */
    void pumpQosQueues();

    /** cancelCall() found @p pid parked in @p tenant's queue. */
    void cancelQueuedCall(int pid, unsigned tenant);

    /**
     * Dequeue-time residency re-vote for a queued call's stale
     * placement hint: the device holding a strict access-weighted
     * majority of the pages @p args point at, or -1 when no device
     * does (unmapped args, host-resident data, tie).
     */
    int residencyMajorityDevice(Task &task,
                                const std::vector<std::uint64_t> &args);

    /** Devices not written off by the health watchdog. */
    unsigned aliveDeviceCount() const;

    /** Bump the aggregate and the per-tenant (_cr3#k) counter. */
    void
    tenantStat(const char *key, unsigned tenant)
    {
        _stats.inc(key);
        _stats.inc(strfmt("%s_cr3#%u", key, tenant));
    }

    /** Record a front-door decision when the arrival trace is on. */
    void
    recordArrival(unsigned tenant, int pid, QosArrival::Outcome outcome,
                  ShedReason reason, Tick estimate)
    {
        if (!_arrivalTraceOn)
            return;
        _arrivals.push_back(
            {_events.now(), tenant, pid, outcome, reason, estimate});
    }

    /** First dispatch of a submitted call: set up and run the entry. */
    void startEntry(TaskExec &x);
    /** Dispatch a thread woken by a migration-return interrupt. */
    void dispatchWake(TaskExec &x);
    /** Dispatch a thread whose failed call re-runs on host text. */
    void dispatchFallback(TaskExec &x);
    /** Act on the descriptor that woke the thread (after ioctl exit). */
    void handleHostDescriptor(TaskExec &x, MigrationDescriptor d);

    /** Run one host segment of @p x and schedule the stop handling. */
    void runHostSegment(TaskExec &x);
    void handleHostStop(int pid, std::uint64_t id, RunResult r);

    /** Host NX fault: begin the host->NxP call migration (Listing 1).
     *  @p canonical is the callee's home-symbol VA (== @p target unless
     *  the placement policy re-pointed the call at a device twin). */
    void startHostToNxpCall(TaskExec &x, VAddr target, unsigned device,
                            VAddr canonical);

    // --- Placement policy (DESIGN.md §11) ------------------------------

    /** A placement decision, clamped to what actually exists. */
    struct Placed
    {
        bool toHost = false; //!< Run the host twin without crossing.
        unsigned device = 0; //!< Dispatch device when !toHost.
        VAddr va = 0;        //!< VA to dispatch (twin or original).
        VAddr canonical = 0; //!< Home-symbol VA (the model's key).
        //! Policy's confidence margin (PlacementDecision::confidencePct);
        //! below SpecConfig::confidenceThresholdPct arms a speculation.
        unsigned confidencePct = 100;
    };

    /**
     * Consult the placement policy for a faulted call to @p target
     * whose PTE tags it for @p home. @p caller_device is the
     * originating NxP for device-to-device calls, hostSide otherwise.
     * Without a policy — or when the policy's answer is impossible —
     * returns the home placement.
     */
    Placed decidePlacement(Task &task, VAddr target, unsigned home,
                           unsigned caller_device);

    /**
     * Policy steered a host-originated faulted call to its host twin:
     * charge the fault service like a quarantine failover would and run
     * @p twin on the host core (no descriptor, no DMA, no device).
     */
    void startHostSteeredCall(TaskExec &x, VAddr faulted, VAddr canonical,
                              VAddr twin, unsigned home);

    /** Feed a completed call's latency to the policy's cost model. */
    void recordPlacementOutcome(Task &task, const CallFrame &frame);

    // --- Speculative dual execution (DESIGN.md §16) --------------------

    /**
     * The descriptor for @p x's armed low-confidence call just fired at
     * @p device: keep the host core (instead of releasing it) and run
     * the host twin speculatively, stores buffered by the manager.
     * Schedules hostSpecFinished at the slice's charged end time.
     */
    void launchSpeculation(TaskExec &x, unsigned device);

    /** The speculative host slice's charged time elapsed. A stale
     *  @p seq means the race was already resolved the other way. */
    void hostSpecFinished(int pid, std::uint64_t seq);

    /** Host twin won: cut the NxP side, replay the buffer, wake. */
    void commitHostSpec(TaskExec &x);

    /**
     * Common tail of every squash path: account the wasted host-core
     * ticks, discard the buffer and give the host core back. @p aborted
     * distinguishes a clean race loss from a conflict/doom/death abort.
     */
    void retireSpec(bool aborted);

    /** Conflict callback target (fires from inside a memory access). */
    void specConflictAbort();

    /**
     * A straggler d2h return of a host-committed race landed: its
     * latency is a genuine device-side sample (the free double-sample).
     */
    void harvestSpecSample(int pid, std::uint64_t call_id);

    /** The entry function returned (or the program exited). */
    void completeCall(TaskExec &x, std::uint64_t value);

    /**
     * Package @p d, suspend the thread and fire the descriptor DMA to
     * @p device (the kernel ioctl path; Section IV-D ordering). Ends by
     * releasing the host core.
     */
    void hostSendDescriptor(TaskExec &x, MigrationDescriptor d,
                            unsigned device);
    /**
     * Ring-stage @p d for @p device: immediately fired (one burst, one
     * doorbell) when batching is off, or parked in the device's open
     * coalescing window when batching is on.
     */
    void stageHostToNxp(MigrationDescriptor d, unsigned device);
    /** Stage @p d in the next h2d ring slot and start its DMA burst. */
    void fireHostToNxp(MigrationDescriptor d, unsigned device);
    /**
     * Close @p device's batch window: ship every parked descriptor as
     * chained DMA bursts (one per maximal run of contiguous ring slots,
     * split where the ring wraps), each with a single doorbell write.
     */
    void flushH2dBatch(unsigned device);

    // --- NxP-side scheduling ------------------------------------------

    /** Schedule an inbox poll on @p device if its core might be free. */
    void kickNxp(unsigned device);
    /** NxP scheduler: pick up the next inbox descriptor (Listing 2). */
    void dispatchNxp(unsigned device);
    void releaseNxp(unsigned device);

    void handleNxpDescriptor(unsigned device, MigrationDescriptor d);
    void runNxpSegment(TaskExec &x, unsigned device);
    void handleNxpStop(int pid, std::uint64_t id, unsigned device,
                       RunResult r);

    /** NxP fetch fault: classify by ISA tag and start the migration. */
    void startNxpFaultMigration(TaskExec &x, VAddr target,
                                unsigned device);

    /**
     * Ship @p d to the host (outbox stage + doorbell + DMA), journal
     * @p step, then release the device core.
     */
    void deviceSendToHost(TaskExec &x, MigrationDescriptor d,
                          unsigned device, ProtocolStep step, VAddr addr);
    /** Stage @p d in the next d2h ring slot and start its DMA burst. */
    void fireNxpToHost(MigrationDescriptor d, unsigned device);

    /** The IRQ handler for @p device's DMA-complete vector. */
    void hostIrq(unsigned device);

    // --- Link integrity (NAK / retransmit / timeout) -------------------

    /**
     * Service the oldest landed descriptor on @p device's d2h ring:
     * verify integrity, NAK-and-retransmit on failure, wake the target
     * thread on success. Shared by the IRQ handler and the watchdog.
     */
    void processHostInbox(unsigned device);

    /** Device rejected its inbox head: retransmit from staging. */
    void nakH2d(unsigned device);
    /** Host rejected its inbox head: retransmit from the outbox. */
    void nakD2h(unsigned device);

    /**
     * Arm (or re-arm) the lost-MSI watchdog for d2h descriptor @p seq.
     * Only armed while fault injection is active; the fault-free event
     * stream carries no watchdog events at all.
     */
    void armD2hWatchdog(unsigned device, std::uint64_t seq);

    /** Die on an exhausted retry budget, naming the link and seed. */
    [[noreturn]] void unrecoverable(const char *link, unsigned device);

    // --- Device health, deadlines and failover -------------------------

    /** Arm the recurring heartbeat (idempotent). */
    void armHeartbeat();
    /** One heartbeat: check call deadlines and device progress. */
    void heartbeat();
    /** The heartbeat found @p device stalled: suspect, then quarantine. */
    void strike(unsigned device);
    /** Nothing outstanding on the device: no progress expected. */
    bool deviceIdle(const NxpSide &s) const;

    /**
     * Quarantine @p device: drain its rings, drop deferred traffic and
     * fail (or fail over) every in-flight call that depends on it.
     */
    void quarantineDevice(unsigned device);

    /** Does @p x's call state reference @p device anywhere? */
    bool execTouches(const TaskExec &x, unsigned device) const;

    /**
     * Admission control's trigger: true when at least one device is
     * alive and every alive device is at the in-flight cap.
     */
    bool fabricSaturated() const;

    /**
     * Complete @p x's call with a non-ok @p status and unwind its
     * bookkeeping (run queue, task state, saved contexts). When the
     * status is deviceLost and the call is rescuable, re-dispatches it
     * to the host-ISA twin instead. Never touches core ownership: a
     * continuation that finds its call gone releases the core it holds.
     */
    void failCall(TaskExec &x, CallStatus status);

    /**
     * Can @p x's failed call be re-executed on the host? Requires the
     * fallback path enabled, a registered host twin, and a leaf call:
     * the topmost frame targets the lost device, nothing deeper
     * references it, and the thread is suspended awaiting it.
     */
    bool canFailover(const TaskExec &x) const;

    /** Convert the top frame to a host frame and queue the re-dispatch. */
    void scheduleFallback(TaskExec &x);

    /** Host twin of (cr3, va), or 0 if none registered. */
    VAddr
    fallbackVa(Addr cr3, VAddr va) const
    {
        auto it = _fallback.find({cr3, va});
        return it == _fallback.end() ? 0 : it->second;
    }

    /** The device a failing call's counters should be charged to, or
     *  hostSide for a pure host call. */
    unsigned execDevice(const TaskExec &x) const;

    /** Charge a failure counter, per-device when one is involved. */
    void
    failStat(const char *key, unsigned device)
    {
        if (device == hostSide)
            _stats.inc(key);
        else
            protoStat(key, device);
    }

    /** Bump the aggregate and the per-device protocol counter. */
    void
    protoStat(const char *key, unsigned device)
    {
        _stats.inc(key);
        _stats.inc(strfmt("%s_dev%u", key, device));
    }

    // --- Helpers -------------------------------------------------------

    /** Ensure the thread has an NxP stack on @p device (Listing 1),
     *  charging the allocation before running @p then. */
    void ensureNxpStack(Task &task, unsigned device, Cont then);

    /** Schedule @p fn to run @p t ticks from now. */
    void
    after(Tick t, Cont fn)
    {
        _events.scheduleIn(t, "flick-engine", std::move(fn));
    }

    Tick hostCycles(std::uint64_t n) const;
    Tick nxpCycles(unsigned device, std::uint64_t n) const;

    void writeHostStaging(const MigrationDescriptor &d, unsigned device,
                          unsigned slot);
    MigrationDescriptor::Wire readNxpInboxWire(unsigned device,
                                               unsigned slot);
    void writeNxpOutbox(const MigrationDescriptor &d, unsigned device,
                        unsigned slot);
    MigrationDescriptor::Wire readHostInboxWire(unsigned device,
                                                unsigned slot);

    /** Current NxP stack pointer for a (possibly nested) call. */
    std::uint64_t currentNxpSp(const Task &task, unsigned device) const;

    /** Append to the journal when enabled. */
    void
    journal(ProtocolStep step, int pid, VAddr addr = 0)
    {
        if (_journalOn)
            _journal.push_back({_events.now(), step, pid, addr});
    }

    /** Emit a trace milestone for call (@p pid, @p id) when tracing. */
    void
    tracePoint(TracePoint p, int pid, std::uint64_t id, unsigned device = 0,
               std::uint64_t arg = 0)
    {
        if (_tracer)
            _tracer->point(p, _events.now(), pid, id, device, arg);
    }

    /** Sample a trace gauge when tracing. */
    void
    traceGauge(TraceGauge g, unsigned device, std::uint64_t value)
    {
        if (_tracer)
            _tracer->gauge(g, _events.now(), device, value);
    }

    NxpSide &side(unsigned device);
    TaskExec &exec(int pid);

    /**
     * The in-flight call (pid, id) if it is still alive, else nullptr.
     * Continuation events and descriptor arrivals look their call up
     * through this so a failed/cancelled call's stragglers bail out
     * instead of acting on a dead call (or on a newer call reusing the
     * PID).
     */
    TaskExec *live(int pid, std::uint64_t id);

    EventQueue &_events;
    MemSystem &_mem;
    const TimingConfig &_timing;
    Kernel &_kernel;
    IrqController &_irq;
    Core &_hostCore;
    std::vector<NxpSide> _nxp;

    //! In-flight submitted calls by PID (node-stable container: chained
    //! events hold PIDs and look their exec state up on entry).
    std::map<int, TaskExec> _exec;

    bool _hostBusy = false;
    bool _hostKickScheduled = false;
    Addr _hostLoadedCr3 = 0;

    Tick _extraRoundTrip = 0;
    std::uint64_t _nxpStackBytes = 64 * 1024;
    bool _batching = false;      //!< h2d descriptor coalescing on/off.
    unsigned _admissionCap = 0;  //!< Per-device in-flight cap; 0 = off.
    unsigned _batchMaxDescs = 0; //!< Largest burst shipped so far.
    ChaosController *_chaos = nullptr;
    Tracer *_tracer = nullptr;
    unsigned _retryBudget = 16;
    std::uint64_t _nextExecId = 0;
    Tick _callDeadline = 0;
    bool _hostFallback = false;
    unsigned _strikeLimit = 2;
    bool _heartbeatArmed = false;
    //! (cr3, va) -> host-ISA twin va (Section 3.3 multi-ISA binaries).
    std::map<std::pair<Addr, VAddr>, VAddr> _fallback;
    //! Placement policy; nullptr = the paper's link-time pinning.
    PlacementPolicy *_policy = nullptr;
    //! Speculative dual execution; nullptr = feature off (DESIGN.md §16).
    SpeculationManager *_spec = nullptr;
    //! Outcome of the current speculative host slice, consumed by
    //! hostSpecFinished (guarded by the manager's seq against staleness).
    struct SpecRun
    {
        std::uint64_t seq = 0;
        std::uint64_t retVal = 0;
        Tick elapsed = 0;
        bool committable = false;
    };
    SpecRun _specRun;
    //! How to credit the straggler d2h return of a host-committed race
    //! to the cost model, keyed by (pid, pre-commit call id).
    struct SpecHarvest
    {
        Addr cr3 = 0;
        VAddr canonical = 0;
        unsigned device = 0;
        Tick t0 = 0;
    };
    std::map<std::pair<int, std::uint64_t>, SpecHarvest> _specHarvest;
    //! Residency counters for the policy view; nullptr = tracking off.
    ResidencyTracker *_residency = nullptr;
    //! (cr3, canonical va) -> per-device dispatch VA (0 = no copy).
    std::map<std::pair<Addr, VAddr>, std::vector<VAddr>> _deviceTwins;
    //! (cr3, twin va) -> canonical va, the reverse of _deviceTwins.
    std::map<std::pair<Addr, VAddr>, VAddr> _twinCanonical;
    bool _journalOn = false;
    std::vector<ProtocolEvent> _journal;
    StatGroup _stats;

    // --- QoS state (all dormant while _qos.enabled is false) -----------
    QosConfig _qos;
    TenantScheduler _tenants;
    //! Per-tenant submission queues, indexed by tenant id.
    std::vector<std::deque<QosPending>> _qosQueues;
    //! pid -> tenant of every queued call (submit guard, cancel path).
    std::map<int, unsigned> _qosQueuedPid;
    //! End-to-end entry-latency EWMAs (the admission fallback model).
    CallCostModel _qosModel;
    bool _arrivalTraceOn = false;
    std::vector<QosArrival> _arrivals;
};

} // namespace flick

#endif // FLICK_FLICK_RUNTIME_HH
