/**
 * @file
 * The Flick migration engine.
 *
 * Implements the protocol of Section IV-B — the host migration handler
 * (Listing 1), the NxP scheduler and migration handler (Listing 2), the
 * kernel ioctl/suspend/wake path and the descriptor DMA — as a set of
 * mutually recursive execution loops:
 *
 *   hostLoop(): runs the host core; an NX instruction fault means the
 *       thread called an NxP function (the PTE's ISA tag says which
 *       device), so the engine performs a call migration (descriptor +
 *       DMA + suspend), lets nxpLoop() run the function on that NxP
 *       core, and completes the hijacked call with the returned value.
 *   nxpLoop(device): runs one NxP core; an inverted-NX or misaligned-
 *       fetch fault means the thread called host code (tag 0) or
 *       another NxP's code (tag != this device), triggering the reverse
 *       or device-to-device migration.
 *
 * The recursion depth mirrors the nesting depth of cross-ISA calls,
 * which is exactly the reentrancy property the paper's handlers provide.
 * All application instructions execute in the interpreters; the handler
 * and kernel costs are charged from TimingConfig, and descriptor bytes
 * really travel through the simulated DMA engines and memories.
 *
 * Multi-NxP support follows the paper's Section IV-C3 suggestion:
 * additional PTE bits (the ISA tag) distinguish the NxP ISAs; device-to-
 * device migrations bounce through the host kernel, which forwards the
 * descriptor to the target device.
 */

#ifndef FLICK_FLICK_RUNTIME_HH
#define FLICK_FLICK_RUNTIME_HH

#include <vector>

#include "flick/descriptor.hh"
#include "flick/heap.hh"
#include "flick/nxp_platform.hh"
#include "isa/core.hh"
#include "mem/dma.hh"
#include "mem/irq.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/timing_config.hh"

namespace flick
{

/**
 * Saved NxP execution state for one nesting level (the thread's context
 * as that device's scheduler would hold it on the thread's NxP stack).
 */
struct NxpSavedLevel
{
    unsigned device;
    std::vector<std::uint64_t> context;
    std::uint64_t sp;
};

/**
 * One step of the migration protocol, for the journal.
 *
 * The steps map onto Figure 2's (a)..(g) walkthrough; tests assert the
 * ordering and tools print the trace.
 */
enum class ProtocolStep
{
    hostNxFault,      //!< (a) host fetched NxP text: NX page fault.
    nxpStackAlloc,    //!< first migration: NxP stack allocated.
    hostSendCall,     //!< (a) call descriptor packaged + thread suspended.
    dmaToNxp,         //!< descriptor DMA fired (after the suspend).
    nxpPickup,        //!< (b) NxP scheduler picked the descriptor up.
    nxpCallStart,     //!< (b) target function entered on the NxP.
    nxpFault,         //!< (c) NxP fetched host text: fault.
    nxpSendCall,      //!< (c) NxP-to-host call descriptor sent.
    hostWake,         //!< (d) host woken by the DMA interrupt.
    hostCallStart,    //!< (d) target host function entered.
    hostSendReturn,   //!< (e) host-to-NxP return descriptor sent.
    nxpResume,        //!< (f) NxP resumed the original function.
    nxpSendReturn,    //!< (f) NxP-to-host return descriptor sent.
    hostReturn,       //!< (g) host resumed with the return value.
    hostForward,      //!< kernel forwarded a device-to-device call.
};

/** Printable step name. */
const char *protocolStepName(ProtocolStep step);

/** One journal record. */
struct ProtocolEvent
{
    Tick when;
    ProtocolStep step;
    int pid;
    VAddr addr; //!< Target/fault address where meaningful.
};

/**
 * Drives threads across the ISA boundary.
 */
class MigrationEngine
{
  public:
    MigrationEngine(EventQueue &events, MemSystem &mem,
                    const TimingConfig &timing, Kernel &kernel,
                    IrqController &irq, Core &host_core,
                    Addr kernel_buf_pa);

    /**
     * Register one NxP device (in device-id order, starting at 0).
     *
     * @param host_inbox_pa Host DRAM slot this device's NxP-to-host
     *        descriptors DMA into.
     * @param irq_vector Host interrupt vector the device raises.
     */
    void addNxpDevice(Core &core, NxpPlatform &platform, DmaEngine &dma,
                      RegionHeap &stack_heap, Addr host_inbox_pa,
                      unsigned irq_vector);

    /**
     * Start @p task at @p entry on the host core and run it (migrating
     * as needed) until the entry function returns or the program exits.
     *
     * @param stack_top Initial host stack pointer.
     * @return The entry function's return value.
     */
    std::uint64_t runHostFunction(Task &task, VAddr entry,
                                  const std::vector<std::uint64_t> &args,
                                  VAddr stack_top);

    /**
     * Inject extra latency per migration round trip, emulating the
     * prior-work systems of Table II / Figure 5's dashed lines.
     */
    void setExtraRoundTripLatency(Tick t) { _extraRoundTrip = t; }

    /** Bytes of NxP stack allocated per thread on first migration. */
    void setNxpStackBytes(std::uint64_t b) { _nxpStackBytes = b; }

    /** Start recording protocol steps (clears any previous journal). */
    void
    enableJournal(bool on = true)
    {
        _journalOn = on;
        _journal.clear();
    }

    /** The recorded protocol steps since enableJournal(). */
    const std::vector<ProtocolEvent> &journal() const { return _journal; }

    StatGroup &stats() { return _stats; }

  private:
    /** Everything belonging to one NxP device. */
    struct NxpSide
    {
        Core *core;
        NxpPlatform *platform;
        DmaEngine *dma;
        RegionHeap *stackHeap;
        Addr hostInboxPa;
        unsigned irqVector;
        unsigned hostInboxPending = 0;
    };

    std::uint64_t hostLoop(Task &task);
    std::uint64_t nxpLoop(Task &task, unsigned device);

    /** Full host->NxP call + NxP->host return migration. */
    std::uint64_t migrateCallToNxp(Task &task, VAddr target,
                                   unsigned device);

    /** Full NxP->host call + host->NxP return migration. */
    std::uint64_t migrateCallToHost(Task &task, VAddr target,
                                    unsigned device);

    /**
     * Device-to-device migration: NxP @p from called code belonging to
     * NxP @p to; the kernel forwards the call and, later, the return.
     */
    std::uint64_t migrateNxpToNxp(Task &task, VAddr target, unsigned from,
                                  unsigned to);

    /** Dispatch an NxP fetch fault by the target page's ISA tag. */
    std::uint64_t dispatchNxpFault(Task &task, VAddr target,
                                   unsigned device);

    /** Ensure the thread has an NxP stack on @p device (Listing 1). */
    void ensureNxpStack(Task &task, unsigned device);

    /** Package and send a host->NxP descriptor (suspends the thread). */
    void sendCallToNxp(Task &task, const MigrationDescriptor &d,
                       unsigned device);

    /** NxP-side pickup: wait, poll, fetch, ACK, context-switch in. */
    MigrationDescriptor receiveOnNxp(unsigned device);

    /** Host-side: wait for the IRQ-delivered descriptor and wake. */
    MigrationDescriptor receiveOnHost(Task &task, unsigned device);

    /** NxP-side: stage a descriptor and DMA it to the host. */
    void sendToHost(const MigrationDescriptor &d, unsigned device);

    /** Receive + run the target function on @p device, send the return
     *  back, and complete the host side of the round trip. */
    std::uint64_t runOnNxpAndReturn(Task &task, unsigned device);

    /** Advance simulated time, running any events that come due. */
    void advance(Tick t);

    template <typename Pred>
    void
    waitFor(Pred pred)
    {
        while (!pred()) {
            if (!_events.step())
                panic("migration engine deadlock: waiting on an empty "
                      "event queue");
        }
    }

    Tick hostCycles(std::uint64_t n) const;
    Tick nxpCycles(unsigned device, std::uint64_t n) const;

    void writeKernelBuffer(const MigrationDescriptor &d);
    MigrationDescriptor readNxpInbox(unsigned device);
    void writeNxpOutbox(const MigrationDescriptor &d, unsigned device);
    MigrationDescriptor readHostInbox(unsigned device);

    /** Current NxP stack pointer for a (possibly nested) call. */
    std::uint64_t currentNxpSp(const Task &task, unsigned device) const;

    /** Append to the journal when enabled. */
    void
    journal(ProtocolStep step, int pid, VAddr addr = 0)
    {
        if (_journalOn)
            _journal.push_back({_events.now(), step, pid, addr});
    }

    /** The IRQ handler for @p device's DMA-complete vector. */
    void hostIrq(unsigned device);

    NxpSide &side(unsigned device);

    EventQueue &_events;
    MemSystem &_mem;
    const TimingConfig &_timing;
    Kernel &_kernel;
    IrqController &_irq;
    Core &_hostCore;
    Addr _kernelBufPa;
    std::vector<NxpSide> _nxp;

    Tick _extraRoundTrip = 0;
    std::uint64_t _nxpStackBytes = 64 * 1024;
    unsigned _depth = 0;
    std::vector<NxpSavedLevel> _nxpCtxStack;
    bool _journalOn = false;
    std::vector<ProtocolEvent> _journal;
    StatGroup _stats;
};

} // namespace flick

#endif // FLICK_FLICK_RUNTIME_HH
