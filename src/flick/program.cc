#include "flick/program.hh"

#include "isa/hx64/assembler.hh"
#include "isa/rv64/assembler.hh"
#include "sim/logging.hh"

namespace flick
{

void
Program::addData(const std::string &name, std::vector<std::uint8_t> bytes,
                 bool nxp_local)
{
    Section s;
    s.name = nxp_local ? (".data.nxp." + name) : (".data." + name);
    s.isa = IsaKind::hx64; // irrelevant for data
    s.executable = false;
    s.writable = true;
    s.nxpLocal = nxp_local;
    s.align = 4096;
    s.bytes = std::move(bytes);
    s.symbols[name] = 0;
    _dataSections.push_back(std::move(s));
}

void
Program::addNativeHostFn(
    std::string name, unsigned nargs,
    std::function<std::uint64_t(NativeContext &,
                                const std::vector<std::uint64_t> &)> body,
    Tick cost)
{
    NativeFn fn;
    fn.name = std::move(name);
    fn.isa = IsaKind::hx64;
    fn.nargs = nargs;
    fn.cost = cost;
    fn.body = std::move(body);
    _natives.push_back(std::move(fn));
}

void
Program::addNativeNxpFn(
    std::string name, unsigned nargs,
    std::function<std::uint64_t(NativeContext &,
                                const std::vector<std::uint64_t> &)> body,
    Tick cost)
{
    NativeFn fn;
    fn.name = std::move(name);
    fn.isa = IsaKind::rv64;
    fn.nargs = nargs;
    fn.cost = cost;
    fn.body = std::move(body);
    _natives.push_back(std::move(fn));
}

LinkedImage
Program::link(NativeRegistry &registry) const
{
    MultiIsaLinker linker;

    int host_units = 0;
    int nxp_units = 0;
    for (const AsmUnit &unit : _units) {
        if (unit.isa == IsaKind::hx64) {
            std::string name = ".text.hx64";
            if (host_units > 0)
                name += "." + std::to_string(host_units);
            ++host_units;
            linker.addSection(hx64Assemble(unit.source, name));
        } else {
            std::string name = ".text.rv64";
            if (unit.nxpDevice > 0)
                name += ".dev" + std::to_string(unit.nxpDevice);
            if (nxp_units > 0)
                name += "." + std::to_string(nxp_units);
            ++nxp_units;
            Section section = rv64Assemble(unit.source, name);
            section.nxpDevice = unit.nxpDevice;
            linker.addSection(section);
        }
    }
    for (const Section &s : _dataSections)
        linker.addSection(s);

    for (const auto &[name, va] : _absolutes)
        linker.defineAbsolute(name, va);

    for (const NativeFn &fn : _natives) {
        VAddr va = registry.add(fn);
        linker.defineAbsolute(fn.name, va);
    }

    return linker.link();
}

} // namespace flick
