/**
 * @file
 * Multi-tenant QoS and overload protection (DESIGN.md §14).
 *
 * Each loaded process (address space, keyed by its cr3) is a tenant.
 * With QoS enabled, submit() becomes a guarded front door in front of
 * the migration engine:
 *
 *   - a deadline-aware admission test estimates the call's completion
 *     time (policy EWMAs / the QoS cost model / the analytic crossing
 *     floor, plus the tenant's backlog) and sheds calls that cannot
 *     meet their deadline before they occupy ring slots;
 *   - each tenant has an in-flight budget (scaled down when devices are
 *     quarantined — capacity loss propagates into admission); calls
 *     over budget wait in the tenant's bounded submission queue;
 *   - freed capacity is handed out by weighted fair dequeue across the
 *     tenant queues, so a bursty tenant cannot starve a well-behaved
 *     one.
 *
 * Every refusal completes the future immediately with
 * CallStatus::shedLoad and a ShedReason, without allocating a call
 * frame, touching a descriptor ring or scheduling an event. With QoS
 * disabled (the default) none of this code runs and every workload is
 * tick-for-tick identical to a build without the subsystem
 * (tests/qos_test.cpp asserts it).
 */

#ifndef FLICK_FLICK_QOS_HH
#define FLICK_FLICK_QOS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "flick/call_future.hh"
#include "mem/sparse_memory.hh"
#include "sim/ticks.hh"

namespace flick
{

/** Printable shed-reason name. */
const char *shedReasonName(ShedReason reason);

/**
 * Tunables of the multi-tenant QoS layer (SystemConfig::withQos).
 */
struct QosConfig
{
    /** Master switch; off means zero overhead and tick-identity. */
    bool enabled = false;
    /**
     * Per-tenant in-flight budget: calls admitted into the engine but
     * not yet completed. A tenant at its budget queues (or sheds, see
     * tenantQueueCap) instead of admitting more. Quarantined devices
     * shrink the effective budget proportionally to the capacity lost.
     */
    unsigned tenantInFlight = 4;
    /**
     * Pending slots in each tenant's submission queue. An over-budget
     * arrival finding the queue full is shed with ShedReason::queueFull;
     * 0 disables queueing entirely, so every over-budget arrival is
     * shed immediately with ShedReason::tenantOverBudget.
     */
    unsigned tenantQueueCap = 16;
    /**
     * Shed calls whose estimated completion time misses their deadline
     * at admission time (and re-check at dequeue). Only calls that
     * carry a deadline (per-call or SystemConfig::callDeadline) are
     * tested; deadline-less calls always pass.
     */
    bool deadlineAdmission = true;
    /**
     * Weighted-fair-dequeue weight per tenant, indexed by tenant id
     * (the order processes were loaded). Absent / zero entries default
     * to weight 1. A tenant with weight w receives w shares of freed
     * capacity per share a weight-1 tenant receives.
     */
    std::vector<unsigned> tenantWeights;
    /**
     * Starvation bound: an eligible tenant (queued work, under budget)
     * passed over this many consecutive served dequeues is picked next
     * regardless of its weighted-fair virtual time, so every queued
     * tenant is served within a bounded number of dequeues even while
     * fresh low-virtual-time tenants keep arriving. 0 disables aging
     * (pure WFQ, unbounded worst-case wait).
     */
    unsigned agingDequeues = 64;

    /** Weight of @p tenant (defaulting absent/zero entries to 1). */
    unsigned
    weight(unsigned tenant) const
    {
        if (tenant < tenantWeights.size() && tenantWeights[tenant])
            return tenantWeights[tenant];
        return 1;
    }

    /** Set @p tenant's weight (growing the table as needed). */
    QosConfig &
    setWeight(unsigned tenant, unsigned w)
    {
        if (tenantWeights.size() <= tenant)
            tenantWeights.resize(tenant + 1, 0);
        tenantWeights[tenant] = w;
        return *this;
    }
};

/**
 * One recorded QoS front-door decision (SystemConfig::withArrivalTrace).
 * Passive debug instrumentation: recording perturbs nothing.
 */
struct QosArrival
{
    /** What the front door (or a later dequeue) decided. */
    enum class Outcome : std::uint8_t
    {
        admitted, //!< Entered the engine at submit time.
        queued,   //!< Parked in the tenant's submission queue.
        shed,     //!< Refused at submit time (see reason).
        dequeued, //!< Left the queue and entered the engine.
        shedAtDequeue, //!< Refused at dequeue (deadline now infeasible).
        cancelledQueued, //!< cancel() removed it from the queue.
    };

    Tick when = 0;
    unsigned tenant = 0;
    int pid = 0;
    Outcome outcome = Outcome::admitted;
    ShedReason reason = ShedReason::none;
    /** Completion-time estimate at decision time (admission test). */
    Tick estimate = 0;
};

/** Printable arrival-outcome name. */
const char *qosOutcomeName(QosArrival::Outcome outcome);

/**
 * Tenant registry, in-flight accounting and the weighted-fair pick.
 *
 * Owned by the MigrationEngine; the engine keeps the queued calls
 * themselves (they hold engine-internal state) and asks the scheduler
 * which tenant's queue to serve next. Fairness is start-time weighted
 * fair queuing over served call counts: the eligible tenant with the
 * smallest served/weight virtual time wins, ties broken by tenant id,
 * so the dequeue order is deterministic.
 */
class TenantScheduler
{
  public:
    /** Tenant id of @p cr3, registering it on first sight. */
    unsigned
    tenantOf(Addr cr3)
    {
        auto it = _index.find(cr3);
        if (it != _index.end())
            return it->second;
        unsigned id = static_cast<unsigned>(_tenants.size());
        _index.emplace(cr3, id);
        _tenants.push_back(Tenant{cr3});
        return id;
    }

    /** Registered tenant count. */
    unsigned count() const { return static_cast<unsigned>(_tenants.size()); }

    /** cr3 of @p tenant. */
    Addr cr3Of(unsigned tenant) const { return _tenants[tenant].cr3; }

    unsigned inFlight(unsigned t) const { return _tenants[t].inFlight; }
    unsigned queued(unsigned t) const { return _tenants[t].queued; }

    /** A call of @p tenant entered the engine. */
    void onAdmit(unsigned tenant) { ++_tenants[tenant].inFlight; }

    /** A call of @p tenant completed or failed inside the engine. */
    void
    onRetire(unsigned tenant)
    {
        if (_tenants[tenant].inFlight)
            --_tenants[tenant].inFlight;
    }

    void onEnqueue(unsigned tenant) { ++_tenants[tenant].queued; }

    /** A queued call of @p tenant left the queue (any outcome). */
    void
    onDequeue(unsigned tenant)
    {
        Tenant &t = _tenants[tenant];
        if (t.queued)
            --t.queued;
    }

    /**
     * Charge one served dequeue to @p tenant's weighted-fair virtual
     * time. Only dequeues that actually admit a call are charged —
     * a cancel or a dequeue-time shed does not consume the tenant's
     * share.
     */
    void charge(unsigned tenant) { ++_tenants[tenant].served; }

    /**
     * The weighted-fair choice: among tenants with queued work whose
     * in-flight count is under @p budget_of(tenant), the one with the
     * smallest served/weight virtual time (ties to the lower id);
     * -1 when no tenant is eligible.
     *
     * Aging (@p aging_dequeues > 0) bounds the worst-case wait: every
     * successful pick increments the eligible tenants it passed over,
     * and a tenant whose counter reaches the bound preempts the
     * virtual-time order on the next pick (largest counter wins, ties
     * to the lower id). Pure WFQ can starve a high-virtual-time tenant
     * indefinitely while fresh tenants keep arriving with served == 0;
     * with aging, an eligible tenant is served within aging_dequeues + 1
     * dequeues of becoming eligible (tests/qos_test.cpp asserts it).
     */
    template <typename BudgetFn, typename WeightFn>
    int
    pick(BudgetFn budget_of, WeightFn weight_of,
         unsigned aging_dequeues = 0)
    {
        int best = -1;
        int starved = -1;
        _lastPickAged = false;
        for (unsigned t = 0; t < _tenants.size(); ++t) {
            const Tenant &c = _tenants[t];
            if (!c.queued || c.inFlight >= budget_of(t))
                continue;
            if (aging_dequeues && c.waiting >= aging_dequeues &&
                (starved < 0 ||
                 c.waiting > _tenants[static_cast<unsigned>(starved)].waiting))
                starved = static_cast<int>(t);
            if (best < 0) {
                best = static_cast<int>(t);
                continue;
            }
            // c wins if c.served/c.weight < best.served/best.weight,
            // cross-multiplied to stay in integers.
            const Tenant &b = _tenants[static_cast<unsigned>(best)];
            std::uint64_t lhs = c.served * weight_of(static_cast<unsigned>(best));
            std::uint64_t rhs = b.served * weight_of(t);
            if (lhs < rhs)
                best = static_cast<int>(t);
        }
        if (starved >= 0 && starved != best) {
            best = starved;
            _lastPickAged = true;
        } else if (starved >= 0) {
            // The starved tenant won on virtual time anyway; its
            // counter still resets below.
            _lastPickAged = true;
        }
        if (best >= 0) {
            for (unsigned t = 0; t < _tenants.size(); ++t) {
                Tenant &c = _tenants[t];
                if (static_cast<int>(t) == best) {
                    c.waiting = 0;
                    continue;
                }
                if (c.queued && c.inFlight < budget_of(t))
                    ++c.waiting;
            }
        }
        return best;
    }

    /** Did the last successful pick() come from aging preemption? */
    bool lastPickAged() const { return _lastPickAged; }

  private:
    struct Tenant
    {
        Addr cr3 = 0;
        unsigned inFlight = 0; //!< Admitted into the engine, not retired.
        unsigned queued = 0;   //!< Waiting in the submission queue.
        std::uint64_t served = 0; //!< Dequeues charged (WFQ virtual time).
        //! Served picks this eligible tenant was passed over (aging).
        unsigned waiting = 0;
    };

    std::vector<Tenant> _tenants;
    std::map<Addr, unsigned> _index;
    bool _lastPickAged = false;
};

} // namespace flick

#endif // FLICK_FLICK_QOS_HH
