#include "flick/qos.hh"

namespace flick
{

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
      case ShedReason::none: return "none";
      case ShedReason::queueFull: return "queueFull";
      case ShedReason::deadlineInfeasible: return "deadlineInfeasible";
      case ShedReason::tenantOverBudget: return "tenantOverBudget";
    }
    return "?";
}

const char *
qosOutcomeName(QosArrival::Outcome outcome)
{
    switch (outcome) {
      case QosArrival::Outcome::admitted: return "admitted";
      case QosArrival::Outcome::queued: return "queued";
      case QosArrival::Outcome::shed: return "shed";
      case QosArrival::Outcome::dequeued: return "dequeued";
      case QosArrival::Outcome::shedAtDequeue: return "shedAtDequeue";
      case QosArrival::Outcome::cancelledQueued: return "cancelledQueued";
    }
    return "?";
}

} // namespace flick
