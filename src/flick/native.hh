/**
 * @file
 * Native-function bridge.
 *
 * Lets examples and tests implement functions as C++ callables instead of
 * toy assembly while keeping the migration machinery honest: a native
 * function is bound to an address in one of the two gate pages, whose NX
 * bits make it look like host or NxP text. Calling it from the *other*
 * ISA therefore migrates exactly like calling real code; once the PC
 * reaches the gate on the correct core, the hook runs the C++ body and
 * charges its declared cost.
 */

#ifndef FLICK_FLICK_NATIVE_HH
#define FLICK_FLICK_NATIVE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/core.hh"
#include "loader/loader.hh"

namespace flick
{

/** Services available to a native function body. */
class NativeContext
{
  public:
    explicit NativeContext(Core &core) : _core(core) {}

    /** The core the function is executing on. */
    Core &core() { return _core; }

    /** Read @p len (1/2/4/8) bytes at virtual @p va (untimed). */
    std::uint64_t readVa(VAddr va, unsigned len = 8);

    /** Write @p len bytes at virtual @p va (untimed). */
    void writeVa(VAddr va, std::uint64_t value, unsigned len = 8);

  private:
    Core &_core;
};

/** A registered native function. */
struct NativeFn
{
    std::string name;
    IsaKind isa;          //!< Which side the body "belongs" to.
    VAddr va;             //!< Gate address the symbol resolves to.
    unsigned nargs;
    Tick cost;            //!< Simulated execution time charged per call.
    std::function<std::uint64_t(NativeContext &,
                                const std::vector<std::uint64_t> &)> body;
};

/**
 * Registry of native functions; owns the gate address assignment.
 */
class NativeRegistry
{
  public:
    /**
     * Register a function; returns the gate VA its symbol resolves to.
     * @param isa Host-ISA functions run on the host core, NxP-ISA ones
     *        on the NxP core (cross-ISA calls migrate first).
     */
    VAddr add(NativeFn fn);

    /** Find the function bound to gate address @p va, or nullptr. */
    const NativeFn *find(VAddr va) const;

    /** All registered functions (for linking their symbols). */
    const std::vector<NativeFn> &functions() const { return _fns; }

    /**
     * The hook to install on a core: dispatches gate PCs for functions
     * of @p isa, reads ABI arguments, runs the body, charges the cost
     * and emulates the return.
     */
    Core::NativeHook makeHook(IsaKind isa) const;

  private:
    std::vector<NativeFn> _fns;
    std::uint64_t _nextHostSlot = 0;
    std::uint64_t _nextNxpSlot = 0;
};

} // namespace flick

#endif // FLICK_FLICK_NATIVE_HH
