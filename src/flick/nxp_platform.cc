#include "flick/nxp_platform.hh"

#include "sim/logging.hh"

namespace flick
{

void
NxpPlatform::consumeInbox()
{
    if (_pending == 0)
        panic("inbox ACK with no pending descriptor");
    --_pending;
    _stats.inc("inbox_acks");
}

std::uint64_t
NxpPlatform::mmioRead(Addr offset, unsigned len)
{
    (void)len;
    switch (offset) {
      case regStatus:
        _stats.inc("status_reads");
        return _pending;
      default:
        panic("NxP control read at unknown offset %#llx",
              (unsigned long long)offset);
    }
}

void
NxpPlatform::mmioWrite(Addr offset, std::uint64_t value, unsigned len)
{
    (void)len;
    switch (offset) {
      case regAck:
        consumeInbox();
        break;
      case regBarRemap: {
        // The host driver computed barBase(device) - nxpDramLocalBase and
        // wrote it here; program the remap window into this device's NxP
        // TLBs (Section IV-A's worked example).
        if (!_nxpMmu)
            panic("BAR remap written before the NxP MMU was attached");
        const PlatformConfig &p = _mem.platform();
        _nxpMmu->setBarRemap(p.barBase(_device), p.deviceDramBytes(_device),
                             value);
        _stats.inc("bar_remap_writes");
        break;
      }
      default:
        panic("NxP control write at unknown offset %#llx",
              (unsigned long long)offset);
    }
}

} // namespace flick
