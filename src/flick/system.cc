#include "flick/system.hh"

#include <ostream>

#include "isa/hx64/disasm.hh"
#include "isa/rv64/disasm.hh"
#include "sim/logging.hh"

namespace flick
{

namespace
{

CoreParams
hostCoreParams(const TimingConfig &t, bool decode_cache)
{
    CoreParams p;
    p.name = "host";
    p.requester = Requester::hostCore;
    p.freqHz = t.hostFreqHz;
    p.itlbEntries = t.hostTlbEntries;
    p.dtlbEntries = t.hostTlbEntries;
    p.walkOverhead = t.hostMmuWalkOverhead;
    p.mmuPolicy.faultOnNxFetch = true;
    p.modelIcache = false;
    p.decodeCache = decode_cache;
    return p;
}

CoreParams
nxpCoreParams(const TimingConfig &t, unsigned device = 0,
              std::uint64_t freq_hz = 0, bool decode_cache = true)
{
    CoreParams p;
    p.name = device == 0 ? "nxp" : "nxp" + std::to_string(device + 1);
    p.requester = nxpCoreRequester(device);
    p.freqHz = freq_hz ? freq_hz : t.nxpFreqHz;
    p.itlbEntries = t.nxpItlbEntries;
    p.dtlbEntries = t.nxpDtlbEntries;
    p.walkOverhead = t.nxpMmuWalkOverhead;
    p.mmuPolicy.faultOnNonNxFetch = true;
    p.mmuPolicy.requiredIsaTag = nxpIsaTag + device;
    p.modelIcache = true;
    p.icacheLines = t.nxpIcacheLines;
    p.icacheLineBytes = t.nxpIcacheLineBytes;
    p.decodeCache = decode_cache;
    return p;
}

} // namespace

FlickSystem::FlickSystem(SystemConfig config)
    : _config(std::move(config)),
      _mem(_config.timing, _config.platform),
      _chaos(_config.chaos),
      _irq(_events, _config.timing),
      _dma(_events, _mem, &_irq),
      _platformCtrl(_mem),
      _hostAlloc("host_dram", 0x100000,
                 _config.platform.hostDramBytes - 0x100000),
      _nxpAlloc("nxp_dram", _platformCtrl.reservedLocalEnd(),
                _config.platform.nxpDramLocalBase +
                    _config.platform.nxpDramBytes -
                    _platformCtrl.reservedLocalEnd()),
      _ptm(_mem, _hostAlloc),
      _hostCore(hostCoreParams(_config.timing, _config.decodeCache), _mem),
      _nxpCore(nxpCoreParams(_config.timing, 0, _config.deviceFrequency(0),
                             _config.decodeCache),
               _mem),
      _loader(_mem, _ptm, _hostAlloc, _nxpAlloc),
      _nxpWindowHeap(
          "nxp_window",
          layout::nxpWindowBase + (_platformCtrl.reservedLocalEnd() -
                                   _config.platform.nxpDramLocalBase),
          _config.platform.nxpDramBytes -
              (_platformCtrl.reservedLocalEnd() -
               _config.platform.nxpDramLocalBase))
{
    if (_config.platform.nxpDeviceCount == 0)
        fatal("a Flick platform needs at least one NxP device");

    _platformCtrl.setNxpMmu(&_nxpCore.mmu());

    // Every fabric component consults the one chaos controller, so a
    // seed fully determines the injected fault sequence.
    _dma.setChaos(&_chaos);
    _irq.setChaos(&_chaos);

    // The one tracer (disabled unless configured): milestones from the
    // engine and kernel, queue-depth gauges from the DMA engines.
    if (_config.trace)
        _tracer.enable();
    _dma.setTracer(&_tracer);
    _kernel.setTracer(&_tracer, &_events);

    _engine = std::make_unique<MigrationEngine>(_events, _mem,
                                                _config.timing, _kernel,
                                                _irq, _hostCore);
    _engine->setChaos(&_chaos);
    _engine->setTracer(&_tracer);
    _engine->setRetryBudget(_config.retryBudget);
    _engine->setCallDeadline(_config.callDeadline);
    _engine->setHostFallback(_config.hostFallback);
    _engine->setHealthStrikeLimit(_config.healthStrikeLimit);
    _engine->setBatching(_config.batching);
    _engine->setAdmissionCap(_config.admissionCap);
    _engine->setQos(_config.qos);
    _engine->setArrivalTrace(_config.arrivalTrace);

    // Placement policy (DESIGN.md §11). The policy object always exists
    // (debug().policy() is total), but the engine is only pointed at it
    // when the config asks for more than the default link-time pinning:
    // the fault-free default dispatch path stays exactly the paper's.
    _placement = _config.placementPolicy
                     ? _config.placementPolicy
                     : makePlacementPolicy(_config.placement,
                                           _config.placementConfig);
    if (_config.placementPolicy ||
        _config.placement != PlacementKind::staticPlacement)
        _engine->setPlacementPolicy(_placement.get());

    // Per device: a host-side staging ring the kernel packages outbound
    // descriptors into, and a host-side inbox ring the device's outbox
    // DMAs into. The device-local mailbox rings live in the reserved
    // window of its DRAM (NxpPlatform).
    unsigned slots = _config.ringSlots;
    if (slots == 0)
        slots = 1;
    if (slots > NxpPlatform::maxRingSlots)
        slots = NxpPlatform::maxRingSlots;
    std::uint64_t ring_bytes = slots * DescriptorRing::slotBytes;

    Addr staging0 = _hostAlloc.allocate(ring_bytes);
    Addr inbox0 = _hostAlloc.allocate(ring_bytes);
    _engine->addNxpDevice(_nxpCore, _platformCtrl, _dma, _nxpWindowHeap,
                          staging0, inbox0, 0, slots,
                          _config.deviceFrequency(0));

    // Devices 1..N-1: each gets its own core, platform controller, DMA
    // engine, window heap and descriptor rings, registered with the
    // engine in device-id order.
    std::uint64_t reserved = _platformCtrl.reservedLocalEnd() -
                             _config.platform.nxpDramLocalBase;
    for (unsigned k = 1; k < _config.platform.nxpDeviceCount; ++k) {
        auto core = std::make_unique<Rv64Core>(
            nxpCoreParams(_config.timing, k, _config.deviceFrequency(k),
                          _config.decodeCache),
            _mem);
        auto ctrl = std::make_unique<NxpPlatform>(_mem, k);
        ctrl->setNxpMmu(&core->mmu());
        auto dma = std::make_unique<DmaEngine>(_events, _mem, &_irq, k);
        dma->setChaos(&_chaos);
        dma->setTracer(&_tracer);
        auto heap = std::make_unique<RegionHeap>(
            "nxp" + std::to_string(k + 1) + "_window",
            layout::nxpWindowBaseFor(k) + reserved,
            _config.platform.deviceDramBytes(k) - reserved);
        Addr staging = _hostAlloc.allocate(ring_bytes);
        Addr inbox = _hostAlloc.allocate(ring_bytes);
        _engine->addNxpDevice(*core, *ctrl, *dma, *heap, staging, inbox, k,
                              slots, _config.deviceFrequency(k));
        _extraNxpCores.push_back(std::move(core));
        _extraPlatformCtrls.push_back(std::move(ctrl));
        _extraDmas.push_back(std::move(dma));
        _extraWindowHeaps.push_back(std::move(heap));
    }
    _engine->setNxpStackBytes(_config.nxpStackBytes);

    // Native-function gates.
    _hostCore.setNativeRange(layout::nativeGateHost,
                             layout::nativeGateHost + 4096,
                             _natives.makeHook(IsaKind::hx64));
    _nxpCore.setNativeRange(layout::nativeGateNxp,
                            layout::nativeGateNxp + 4096,
                            _natives.makeHook(IsaKind::rv64));
    for (auto &core : _extraNxpCores) {
        core->setNativeRange(layout::nativeGateNxp,
                             layout::nativeGateNxp + 4096,
                             _natives.makeHook(IsaKind::rv64));
    }

    // Driver bring-up: compute each device's BAR remap offset and write
    // it into that device's TLB control register through its control
    // BAR, as the host driver does at boot (Section IV-A).
    for (unsigned k = 0; k < _config.platform.nxpDeviceCount; ++k) {
        _mem.writeInt(Requester::hostCore,
                      _config.platform.ctrlBase(k) +
                          NxpPlatform::regBarRemap,
                      _config.platform.barRemapOffsetFor(k), 8);
    }

    // Data residency layer (DESIGN.md §15). The tracker is passive —
    // with it absent the MemSystem counting branch never runs and no
    // flick.residency.* counters exist; the migrator additionally
    // schedules scan events, so it is gated separately.
    if (_config.residencyTracking || _config.migration.enabled) {
        _residencyTracker = std::make_unique<ResidencyTracker>(
            _config.platform.nxpDeviceCount);
        _mem.setResidencyTracker(_residencyTracker.get());
        _engine->setResidencyTracker(_residencyTracker.get());
    }
    if (_config.migration.enabled) {
        MigrationConfig mcfg = _config.migration;
        mcfg.enabled = true;
        _migrator = std::make_unique<PageMigrator>(
            _events, _mem, _ptm, *_residencyTracker, _hostAlloc, mcfg);
        _migrator->addDevice(&_dma, &_nxpWindowHeap);
        for (std::size_t k = 0; k < _extraDmas.size(); ++k)
            _migrator->addDevice(_extraDmas[k].get(),
                                 _extraWindowHeaps[k].get());
        _migrator->addMmu(&_hostCore.mmu());
        _migrator->addMmu(&_nxpCore.mmu());
        for (auto &core : _extraNxpCores)
            _migrator->addMmu(&core->mmu());
        // The write-listener fan-out doubles as the migrator's dirty
        // detector while a page copy is in flight (DESIGN.md §13/§15).
        _mem.addDecodeSink(_migrator.get());
        _migrator->start();
    }

    // Speculative dual execution (DESIGN.md §16). Gated on construction
    // like the residency layer: with it off no manager exists, the
    // MemSystem hook pointer stays null and the engine's spec paths are
    // unreachable — tick-for-tick identity with a pre-speculation build.
    if (_config.speculation.enabled) {
        _speculation = std::make_unique<SpeculationManager>(
            _mem, _config.speculation);
        _engine->setSpeculation(_speculation.get());
    }
}

Rv64Core &
FlickSystem::Debug::nxpCore(unsigned device) const
{
    if (device == 0)
        return sys->_nxpCore;
    if (device - 1 < sys->_extraNxpCores.size())
        return *sys->_extraNxpCores[device - 1];
    fatal("no NxP device %u", device);
}

NxpPlatform &
FlickSystem::Debug::nxpPlatform(unsigned device) const
{
    if (device == 0)
        return sys->_platformCtrl;
    if (device - 1 < sys->_extraPlatformCtrls.size())
        return *sys->_extraPlatformCtrls[device - 1];
    fatal("no NxP device %u", device);
}

DmaEngine &
FlickSystem::Debug::dma(unsigned device) const
{
    if (device == 0)
        return sys->_dma;
    if (device - 1 < sys->_extraDmas.size())
        return *sys->_extraDmas[device - 1];
    fatal("no NxP device %u", device);
}

RegionHeap &
FlickSystem::Debug::nxpHeap(unsigned device) const
{
    if (device == 0)
        return sys->_nxpWindowHeap;
    if (device - 1 < sys->_extraWindowHeaps.size())
        return *sys->_extraWindowHeaps[device - 1];
    fatal("no NxP device %u", device);
}

Process &
FlickSystem::load(const Program &program)
{
    LinkedImage image = program.link(_natives);
    auto proc = std::make_unique<Process>();
    proc->image = _loader.load(image, _config.loadOptions);
    proc->task = &_kernel.createTask(proc->image.cr3);
    // Tenants (DESIGN.md §14) are numbered in process load order, so the
    // _cr3#<k> stat suffixes and withTenantWeight() indices are stable
    // across runs regardless of submission interleaving.
    if (_config.qos.enabled)
        _engine->registerTenant(proc->image.cr3);
    proc->task->hostStackTop = proc->image.hostStackTop;
    proc->task->hostStackBytes = _config.loadOptions.hostStackBytes;
    proc->hostHeap = std::make_unique<RegionHeap>(
        "host_heap", proc->image.hostHeapBase, proc->image.hostHeapBytes);
    // Spawned threads carve their stacks below the main stack, separated
    // by unmapped guard gaps.
    proc->nextThreadStackTop = proc->image.hostStackTop -
                               _config.loadOptions.hostStackBytes -
                               threadStackGuard;
    // Multi-ISA binaries carry every function as text for every ISA
    // (Section 3.3): a symbol "f__host" is the host-ISA twin of "f" and
    // becomes f's failover target when host fallback is enabled — and,
    // since PR 5, the target a placement policy steers to when its cost
    // model says crossing does not pay (DESIGN.md §11).
    static const std::string twin_suffix = "__host";
    for (const auto &[name, va] : proc->image.symbols) {
        if (name.size() <= twin_suffix.size() ||
            name.compare(name.size() - twin_suffix.size(),
                         twin_suffix.size(), twin_suffix) != 0)
            continue;
        auto orig = proc->image.symbols.find(
            name.substr(0, name.size() - twin_suffix.size()));
        if (orig != proc->image.symbols.end())
            _engine->registerHostFallback(proc->image.cr3, orig->second,
                                          va);
    }

    // Device twins: "f__dev<k>" is f assembled for NxP k. The linked
    // image's executable sections say which device each symbol's text
    // really belongs to (the loader tags its PTEs accordingly); the
    // registry built here is what lets a placement policy re-point a
    // faulted call at any device's copy of the function. Twins inherit
    // the original's "__host" fallback so failover works regardless of
    // which copy a call was steered to.
    auto execDevice = [&image](VAddr va) -> int {
        for (const auto &sec : image.sections) {
            if (!sec.executable || va < sec.base ||
                va >= sec.base + sec.bytes.size())
                continue;
            return sec.isa == IsaKind::rv64 ? static_cast<int>(sec.nxpDevice)
                                            : -1;
        }
        return -1;
    };
    static const std::string dev_infix = "__dev";
    for (const auto &[name, va] : proc->image.symbols) {
        auto pos = name.rfind(dev_infix);
        if (pos == std::string::npos || pos == 0 ||
            pos + dev_infix.size() >= name.size())
            continue;
        bool digits = true;
        for (auto i = pos + dev_infix.size(); i < name.size(); ++i)
            digits = digits && name[i] >= '0' && name[i] <= '9';
        if (!digits)
            continue;
        auto orig = proc->image.symbols.find(name.substr(0, pos));
        if (orig == proc->image.symbols.end())
            continue;
        int twin_dev = execDevice(va);
        int home_dev = execDevice(orig->second);
        if (twin_dev < 0 || home_dev < 0)
            continue; // not a pair of NxP text symbols
        Addr cr3 = proc->image.cr3;
        _engine->registerDeviceTwin(cr3, orig->second,
                                    static_cast<unsigned>(home_dev),
                                    orig->second);
        _engine->registerDeviceTwin(cr3, orig->second,
                                    static_cast<unsigned>(twin_dev), va);
        auto host_twin =
            proc->image.symbols.find(name.substr(0, pos) + twin_suffix);
        if (host_twin != proc->image.symbols.end())
            _engine->registerHostFallback(cr3, va, host_twin->second);
    }
    _processes.push_back(std::move(proc));
    return *_processes.back();
}

Task &
FlickSystem::spawnThread(Process &process, std::uint64_t stack_bytes)
{
    stack_bytes = (stack_bytes + 4095) & ~std::uint64_t(4095);
    VAddr top = process.nextThreadStackTop;
    VAddr base = top - stack_bytes;
    for (VAddr va = base; va < top; va += 4096) {
        Addr pa = _hostAlloc.allocate(4096);
        _ptm.map(process.image.cr3, va, pa, 4096, PageSize::size4K,
                 pte::user | pte::writable | pte::noExecute);
    }
    process.nextThreadStackTop = base - threadStackGuard;
    return _kernel.createThread(process.image.cr3, top, stack_bytes);
}

void
FlickSystem::exitThread(Task &thread)
{
    _engine->releaseNxpStacks(thread);
    _kernel.exitTask(thread);
}

CallFuture
FlickSystem::submit(Process &process, CallSpec spec)
{
    Task &thread = spec.task ? *spec.task : *process.task;
    VAddr va = spec.symbol.empty() ? spec.address
                                   : process.image.symbol(spec.symbol);
    if (!va)
        fatal("CallSpec names neither a symbol nor an address");
    MigrationEngine::SubmitOptions opts;
    opts.deadline = spec.deadline;
    opts.placementHint = spec.placementHint;
    return _engine->submit(thread, va, spec.args,
                           thread.hostStackTop - 64, opts);
}

CallFuture
FlickSystem::submit(Process &process, const std::string &symbol,
                    std::vector<std::uint64_t> args)
{
    return submit(process, CallSpec(symbol).withArgs(std::move(args)));
}

CallFuture
FlickSystem::submit(Process &process, Task &thread,
                    const std::string &symbol,
                    std::vector<std::uint64_t> args)
{
    return submit(process, CallSpec(symbol)
                               .withArgs(std::move(args))
                               .onThread(thread));
}

CallFuture
FlickSystem::submitVa(Process &process, Task &thread, VAddr va,
                      std::vector<std::uint64_t> args)
{
    return submit(process, CallSpec::addr(va)
                               .withArgs(std::move(args))
                               .onThread(thread));
}

std::uint64_t
FlickSystem::call(Process &process, const std::string &symbol,
                  std::vector<std::uint64_t> args)
{
    return callVa(process, process.image.symbol(symbol), std::move(args));
}

std::uint64_t
FlickSystem::callVa(Process &process, VAddr va,
                    std::vector<std::uint64_t> args)
{
    CallFuture f = submitVa(process, *process.task, va, std::move(args));
    std::uint64_t v = f.wait();
    if (f.status() != CallStatus::ok) {
        // The synchronous API has no way to hand the outcome back;
        // failing loudly beats returning a fabricated 0.
        fatal("call at %#llx failed with status %s",
              (unsigned long long)va, callStatusName(f.status()));
    }
    return v;
}

VAddr
FlickSystem::nxpMalloc(std::uint64_t bytes, std::uint64_t align,
                       unsigned device)
{
    return debug().nxpHeap(device).allocate(bytes, align);
}

VAddr
FlickSystem::hostMalloc(Process &process, std::uint64_t bytes,
                        std::uint64_t align)
{
    return process.hostHeap->allocate(bytes, align);
}

VAddr
FlickSystem::migratableMalloc(Process &process, std::uint64_t bytes,
                              int device)
{
    if (device >= static_cast<int>(_config.platform.nxpDeviceCount))
        fatal("migratableMalloc: no NxP device %d", device);
    if (!process.migratableHeap) {
        static_assert(layout::hostHeapBase < layout::migratableBase,
                      "migratable region must sit above the host heap");
        if (process.image.hostHeapBase + process.image.hostHeapBytes >
            layout::migratableBase)
            fatal("host heap overlaps the migratable region");
        process.migratableHeap = std::make_unique<RegionHeap>(
            "migratable", layout::migratableBase, layout::migratableBytes);
    }
    // Whole pages: the PageMigrator remaps at 4K granularity, so a block
    // never shares a frame with an unrelated allocation.
    bytes = (bytes + 4095) & ~std::uint64_t(4095);
    VAddr va = process.migratableHeap->allocate(bytes, 4096);
    for (VAddr page = va; page < va + bytes; page += 4096) {
        Addr pa;
        if (device < 0) {
            pa = _hostAlloc.allocate(4096);
        } else {
            // Frames come from the device's window heap (BAR-visible
            // local DRAM), like the engine's NxP stacks.
            VAddr win = debug().nxpHeap(device).allocate(4096, 4096);
            pa = _config.platform.barBase(device) +
                 (win - layout::nxpWindowBaseFor(device));
        }
        _ptm.map(process.image.cr3, page, pa, 4096, PageSize::size4K,
                 pte::user | pte::writable | pte::noExecute);
    }
    if (_migrator)
        _migrator->manage(process.image.cr3, va, bytes);
    return va;
}

Addr
FlickSystem::translateDebug(const Process &process, VAddr va) const
{
    auto tr = _ptm.translate(process.image.cr3, va);
    if (!tr)
        fatal("debug access to unmapped VA %#llx", (unsigned long long)va);
    return tr->pa;
}

std::uint64_t
FlickSystem::readVa(const Process &process, VAddr va, unsigned len)
{
    std::uint64_t v = 0;
    _mem.readInt(Requester::debug, translateDebug(process, va), len, v);
    return v;
}

void
FlickSystem::writeVa(Process &process, VAddr va, std::uint64_t value,
                     unsigned len)
{
    _mem.writeInt(Requester::debug, translateDebug(process, va), value,
                  len);
}

void
FlickSystem::writeBlock(Process &process, VAddr va, const void *data,
                        std::uint64_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        std::uint64_t in_page = 4096 - (va & 4095);
        std::uint64_t take = std::min(len, in_page);
        _mem.write(Requester::debug, translateDebug(process, va), p, take);
        va += take;
        p += take;
        len -= take;
    }
}

void
FlickSystem::readBlock(const Process &process, VAddr va, void *data,
                       std::uint64_t len)
{
    auto *p = static_cast<std::uint8_t *>(data);
    while (len > 0) {
        std::uint64_t in_page = 4096 - (va & 4095);
        std::uint64_t take = std::min(len, in_page);
        _mem.read(Requester::debug, translateDebug(process, va), p, take);
        va += take;
        p += take;
        len -= take;
    }
}

void
FlickSystem::enableInstructionTrace(std::ostream *os)
{
    if (!os) {
        _hostCore.setTraceHook(nullptr);
        _nxpCore.setTraceHook(nullptr);
        return;
    }

    // Instruction bytes are fetched through the untimed debug path so
    // tracing does not perturb TLB or cache statistics.
    auto fetch = [this](Addr cr3, VAddr pc, std::uint8_t *buf,
                        unsigned len) -> unsigned {
        unsigned got = 0;
        while (got < len) {
            auto tr = _ptm.translate(cr3, pc + got);
            if (!tr)
                break;
            unsigned in_page = static_cast<unsigned>(
                4096 - ((pc + got) & 4095));
            unsigned take = std::min(len - got, in_page);
            _mem.read(Requester::debug, tr->pa, buf + got, take);
            got += take;
        }
        return got;
    };

    _hostCore.setTraceHook([this, os, fetch](VAddr pc) {
        std::uint8_t buf[10] = {};
        unsigned got = fetch(_hostCore.mmu().cr3(), pc, buf, sizeof buf);
        Hx64Disasm d = hx64Disassemble(buf, got, pc);
        *os << strfmt("%12llu  host %#12llx: %s\n",
                      (unsigned long long)_events.now(),
                      (unsigned long long)pc, d.text.c_str());
    });
    _nxpCore.setTraceHook([this, os, fetch](VAddr pc) {
        std::uint8_t buf[4] = {};
        fetch(_nxpCore.mmu().cr3(), pc, buf, 4);
        std::uint32_t insn = 0;
        for (int i = 0; i < 4; ++i)
            insn |= std::uint32_t(buf[i]) << (8 * i);
        *os << strfmt("%12llu  nxp  %#12llx: %s\n",
                      (unsigned long long)_events.now(),
                      (unsigned long long)pc,
                      rv64Disassemble(insn, pc).c_str());
    });
}

void
FlickSystem::dumpStats(std::ostream &os)
{
    _mem.stats().dump(os);
    _kernel.stats().dump(os);
    _chaos.stats().dump(os);
    _dma.stats().dump(os);
    _irq.stats().dump(os);
    _platformCtrl.stats().dump(os);
    _engine->stats().dump(os);
    _hostCore.stats().dump(os);
    _nxpCore.stats().dump(os);
    _hostCore.mmu().itlb().stats().dump(os);
    _hostCore.mmu().dtlb().stats().dump(os);
    _nxpCore.mmu().itlb().stats().dump(os);
    _nxpCore.mmu().dtlb().stats().dump(os);
    _nxpCore.mmu().walker().stats().dump(os);
    if (_nxpCore.icache())
        _nxpCore.icache()->stats().dump(os);
    for (std::size_t k = 0; k < _extraNxpCores.size(); ++k) {
        _extraNxpCores[k]->stats().dump(os);
        _extraPlatformCtrls[k]->stats().dump(os);
        _extraDmas[k]->stats().dump(os);
        _extraNxpCores[k]->mmu().itlb().stats().dump(os);
        _extraNxpCores[k]->mmu().dtlb().stats().dump(os);
        _extraNxpCores[k]->mmu().walker().stats().dump(os);
        if (_extraNxpCores[k]->icache())
            _extraNxpCores[k]->icache()->stats().dump(os);
    }
    if (_residencyTracker) {
        _residencyTracker->syncStats();
        _residencyTracker->stats().dump(os);
    }
    if (_migrator)
        _migrator->stats().dump(os);
    if (_tracer.on())
        _tracer.dumpBreakdown(os);
}

} // namespace flick
