/**
 * @file
 * Multi-ISA program builder.
 *
 * The developer-facing mirror of the paper's toolchain flow: add host and
 * NxP assembly units (the "annotated source files" of Section IV-C1),
 * data sections (optionally annotated NxP-local, Section III-D), and
 * native C++ functions; link() produces the single multi-ISA executable
 * image with every cross-ISA reference resolved.
 */

#ifndef FLICK_FLICK_PROGRAM_HH
#define FLICK_FLICK_PROGRAM_HH

#include <string>
#include <vector>

#include "flick/native.hh"
#include "loader/linker.hh"

namespace flick
{

/**
 * Collects the pieces of one multi-ISA executable.
 */
class Program
{
  public:
    /** Add a host-ISA (HX64) assembly unit. */
    void
    addHostAsm(std::string source)
    {
        _units.push_back({IsaKind::hx64, std::move(source)});
    }

    /**
     * Add an NxP-ISA (RV64) assembly unit.
     * @param device Which NxP device the functions should run on.
     */
    void
    addNxpAsm(std::string source, unsigned device = 0)
    {
        _units.push_back({IsaKind::rv64, std::move(source), device});
    }

    /**
     * Add a data section defining symbol @p name at its start.
     * @param nxp_local Place the bytes in NxP local DRAM (the annotated
     *        .data.nxp placement of Section III-D).
     */
    void addData(const std::string &name, std::vector<std::uint8_t> bytes,
                 bool nxp_local = false);

    /** Define an absolute symbol visible to all units. */
    void
    defineAbsolute(std::string name, VAddr va)
    {
        _absolutes.emplace_back(std::move(name), va);
    }

    /**
     * Register a native host function callable from either ISA under
     * @p name (calls from NxP code migrate first, like any host call).
     * @param cost Simulated execution time charged per call.
     */
    void addNativeHostFn(
        std::string name, unsigned nargs,
        std::function<std::uint64_t(NativeContext &,
                                    const std::vector<std::uint64_t> &)>
            body,
        Tick cost = 0);

    /** Register a native NxP function (runs on the NxP core). */
    void addNativeNxpFn(
        std::string name, unsigned nargs,
        std::function<std::uint64_t(NativeContext &,
                                    const std::vector<std::uint64_t> &)>
            body,
        Tick cost = 0);

    /**
     * Assemble and link everything.
     * Native functions are bound to gate addresses in @p registry.
     */
    LinkedImage link(NativeRegistry &registry) const;

  private:
    struct AsmUnit
    {
        IsaKind isa;
        std::string source;
        unsigned nxpDevice = 0;
    };

    std::vector<AsmUnit> _units;
    std::vector<Section> _dataSections;
    std::vector<std::pair<std::string, VAddr>> _absolutes;
    std::vector<NativeFn> _natives;
};

} // namespace flick

#endif // FLICK_FLICK_PROGRAM_HH
