#include "flick/descriptor.hh"

#include <cstring>

namespace flick
{

namespace
{

void
put64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

} // namespace

const char *
descriptorKindName(DescriptorKind kind)
{
    switch (kind) {
      case DescriptorKind::invalid: return "invalid";
      case DescriptorKind::hostToNxpCall: return "hostToNxpCall";
      case DescriptorKind::nxpToHostCall: return "nxpToHostCall";
      case DescriptorKind::hostToNxpReturn: return "hostToNxpReturn";
      case DescriptorKind::nxpToHostReturn: return "nxpToHostReturn";
    }
    return "?";
}

std::array<std::uint8_t, MigrationDescriptor::wireBytes>
MigrationDescriptor::toWire() const
{
    std::array<std::uint8_t, wireBytes> w{};
    put64(&w[0], (std::uint64_t(pid) << 32) |
                     static_cast<std::uint32_t>(kind));
    put64(&w[8], target);
    put64(&w[16], cr3);
    put64(&w[24], nxpSp);
    put64(&w[32], retval);
    put64(&w[40], nargs);
    for (unsigned i = 0; i < maxArgs; ++i)
        put64(&w[48 + 8 * i], args[i]);
    return w;
}

MigrationDescriptor
MigrationDescriptor::fromWire(const std::array<std::uint8_t, wireBytes> &w)
{
    MigrationDescriptor d;
    std::uint64_t head = get64(&w[0]);
    d.kind = static_cast<DescriptorKind>(head & 0xffffffffu);
    d.pid = static_cast<std::uint32_t>(head >> 32);
    d.target = get64(&w[8]);
    d.cr3 = get64(&w[16]);
    d.nxpSp = get64(&w[24]);
    d.retval = get64(&w[32]);
    d.nargs = static_cast<std::uint32_t>(get64(&w[40]));
    for (unsigned i = 0; i < maxArgs; ++i)
        d.args[i] = get64(&w[48 + 8 * i]);
    return d;
}

} // namespace flick
