#include "flick/descriptor.hh"

#include <cstring>

namespace flick
{

namespace
{

void
put64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

// CRC-64/ECMA-182, bitwise, init 0, no final xor. The zero init keeps
// the all-zero descriptor's wire image all zeroes (an untouched mailbox
// slot checks out as intact-but-invalid rather than corrupt), while any
// single-bit flip in either the payload or the stored checksum is
// guaranteed to be detected.
std::uint64_t
crc64(const std::uint8_t *p, std::uint64_t len)
{
    constexpr std::uint64_t poly = 0x42f0e1eba9ea3693ull;
    std::uint64_t crc = 0;
    for (std::uint64_t i = 0; i < len; ++i) {
        crc ^= std::uint64_t(p[i]) << 56;
        for (int b = 0; b < 8; ++b) {
            crc = (crc & (1ull << 63)) ? (crc << 1) ^ poly : crc << 1;
        }
    }
    return crc;
}

} // namespace

const char *
descriptorKindName(DescriptorKind kind)
{
    switch (kind) {
      case DescriptorKind::invalid: return "invalid";
      case DescriptorKind::hostToNxpCall: return "hostToNxpCall";
      case DescriptorKind::nxpToHostCall: return "nxpToHostCall";
      case DescriptorKind::hostToNxpReturn: return "hostToNxpReturn";
      case DescriptorKind::nxpToHostReturn: return "nxpToHostReturn";
    }
    return "?";
}

MigrationDescriptor::Wire
MigrationDescriptor::toWire() const
{
    Wire w{};
    put64(&w[0], (std::uint64_t(pid) << 32) |
                     static_cast<std::uint32_t>(kind));
    put64(&w[8], target);
    put64(&w[16], cr3);
    put64(&w[24], nxpSp);
    put64(&w[32], retval);
    put64(&w[40], nargs);
    for (unsigned i = 0; i < maxArgs; ++i)
        put64(&w[48 + 8 * i], args[i]);
    put64(&w[96], seq);
    put64(&w[104], callId);
    put64(&w[checksummedBytes], crc64(w.data(), checksummedBytes));
    return w;
}

MigrationDescriptor
MigrationDescriptor::fromWire(const Wire &w)
{
    MigrationDescriptor d;
    std::uint64_t head = get64(&w[0]);
    d.kind = static_cast<DescriptorKind>(head & 0xffffffffu);
    d.pid = static_cast<std::uint32_t>(head >> 32);
    d.target = get64(&w[8]);
    d.cr3 = get64(&w[16]);
    d.nxpSp = get64(&w[24]);
    d.retval = get64(&w[32]);
    d.nargs = static_cast<std::uint32_t>(get64(&w[40]));
    for (unsigned i = 0; i < maxArgs; ++i)
        d.args[i] = get64(&w[48 + 8 * i]);
    d.seq = get64(&w[96]);
    d.callId = get64(&w[104]);
    return d;
}

std::uint64_t
MigrationDescriptor::wireChecksum(const Wire &w)
{
    return crc64(w.data(), checksummedBytes);
}

bool
MigrationDescriptor::wireIntact(const Wire &w)
{
    return get64(&w[checksummedBytes]) == wireChecksum(w);
}

} // namespace flick
