/**
 * @file
 * FlickSystem: the public facade of the simulated platform.
 *
 * Owns and wires every component — memories, cores, MMUs, DMA engines,
 * interrupt controller, kernel, loader and migration engine — and exposes
 * the workflow a user of the paper's system would have:
 *
 *     flick::FlickSystem sys(
 *         flick::SystemConfig{}.withNxpDevices(2));   // boot the platform
 *     flick::Program prog;                            // multi-ISA code
 *     prog.addHostAsm(...); prog.addNxpAsm(...);
 *     auto &proc = sys.load(prog);                    // link + load + NX
 *
 *     // Synchronous, single-threaded:
 *     std::uint64_t r = sys.call(proc, "main", {arg0});
 *
 *     // Concurrent: each submit() starts a thread's call and returns a
 *     // future; the calls overlap across the host core and the NxPs.
 *     flick::Task &t2 = sys.spawnThread(proc);
 *     auto f1 = sys.submit(proc, "work", {0});
 *     auto f2 = sys.submit(proc, t2, "work", {1});
 *     std::uint64_t a = f1.wait(), b = f2.wait();
 *     sys.exitThread(t2);
 *
 * Threads start on the host and migrate transparently whenever they call
 * across the ISA boundary.
 */

#ifndef FLICK_FLICK_SYSTEM_HH
#define FLICK_FLICK_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "flick/heap.hh"
#include "flick/native.hh"
#include "flick/nxp_platform.hh"
#include "flick/program.hh"
#include "flick/runtime.hh"
#include "isa/hx64/core.hh"
#include "isa/rv64/core.hh"
#include "loader/loader.hh"
#include "mem/dma.hh"
#include "mem/irq.hh"
#include "mem/mem_system.hh"
#include "os/kernel.hh"
#include "policy/policy.hh"
#include "sim/chaos.hh"
#include "sim/event_queue.hh"
#include "sim/timing_config.hh"
#include "vm/page_table.hh"
#include "vm/phys_allocator.hh"

namespace flick
{

/**
 * All configuration of a FlickSystem, defaulting to the paper's setup.
 *
 * The with*() setters return *this so a config can be built fluently in
 * the constructor call:
 *
 *     FlickSystem sys(SystemConfig{}
 *                         .withNxpDevices(2)
 *                         .withNxpStackBytes(128 * 1024));
 */
struct SystemConfig
{
    TimingConfig timing;
    PlatformConfig platform;
    LoadOptions loadOptions;
    /** NxP stack allocated per thread on first migration. */
    std::uint64_t nxpStackBytes = 64 * 1024;
    /** Descriptor-ring slots per direction and device (in-flight bound). */
    unsigned ringSlots = 8;
    /** Fault-injection (chaos) configuration; disabled by default. */
    ChaosConfig chaos;
    /** Consecutive descriptor retransmissions tolerated per link. */
    unsigned retryBudget = 16;
    /**
     * Per-call completion deadline (0 = none). Expired calls fail with
     * CallStatus::deadlineExceeded. Nonzero deadlines arm the device
     * health heartbeat, perturbing the fault-free event stream, which
     * is why this is opt-in.
     */
    Tick callDeadline = 0;
    /**
     * Re-dispatch calls that lose their NxP (quarantine) to the
     * function's host-ISA twin instead of failing them; twins are the
     * symbols suffixed "__host" that load() registers automatically.
     */
    bool hostFallback = false;
    /** Progress-less heartbeats before a stalled NxP is quarantined. */
    unsigned healthStrikeLimit = 2;
    /**
     * Record trace milestones and gauges along the migration path
     * (DESIGN.md §10). Tracing is passive — a traced run is
     * tick-for-tick identical to an untraced one — but it allocates, so
     * it is opt-in; with it off no trace code touches any container.
     */
    bool trace = false;
    /**
     * Placement policy consulted at every NX-fault dispatch (DESIGN.md
     * §11). The default, staticPlacement, is the paper's link-time
     * pinning and keeps every run tick-for-tick identical to a
     * policy-less engine.
     */
    PlacementKind placement = PlacementKind::staticPlacement;
    /** Tunables of the shipped policies (EWMA shift, margins, ...). */
    PlacementConfig placementConfig;
    /** A caller-supplied policy instance; overrides `placement`. */
    std::shared_ptr<PlacementPolicy> placementPolicy;

    /** Number of NxP devices in the platform (1 or 2). */
    SystemConfig &
    withNxpDevices(unsigned count)
    {
        platform.nxpDeviceCount = count;
        return *this;
    }

    SystemConfig &
    withNxpStackBytes(std::uint64_t bytes)
    {
        nxpStackBytes = bytes;
        return *this;
    }

    SystemConfig &
    withRingSlots(unsigned slots)
    {
        ringSlots = slots;
        return *this;
    }

    /**
     * Seed the chaos PRNG. The seed alone does not enable fault
     * injection (use withChaos()), so a seeded-but-disabled system is
     * tick-for-tick identical to a default one — which the chaos suite
     * asserts.
     */
    SystemConfig &
    withChaosSeed(std::uint64_t seed)
    {
        chaos.seed = seed;
        return *this;
    }

    /** Enable fault injection with the given fault classes/rates. */
    SystemConfig &
    withChaos(const ChaosConfig &config)
    {
        chaos = config;
        return *this;
    }

    SystemConfig &
    withRetryBudget(unsigned budget)
    {
        retryBudget = budget;
        return *this;
    }

    SystemConfig &
    withCallDeadline(Tick deadline)
    {
        callDeadline = deadline;
        return *this;
    }

    SystemConfig &
    withHostFallback(bool on = true)
    {
        hostFallback = on;
        return *this;
    }

    SystemConfig &
    withHealthStrikeLimit(unsigned strikes)
    {
        healthStrikeLimit = strikes;
        return *this;
    }

    /** Enable event tracing and latency attribution (debug().trace()). */
    SystemConfig &
    withTrace(bool on = true)
    {
        trace = on;
        return *this;
    }

    /** Select one of the shipped placement policies (DESIGN.md §11). */
    SystemConfig &
    withPlacement(PlacementKind kind)
    {
        placement = kind;
        return *this;
    }

    /** Install a caller-supplied placement policy instance. */
    SystemConfig &
    withPlacement(std::shared_ptr<PlacementPolicy> policy)
    {
        placementPolicy = std::move(policy);
        return *this;
    }

    /** Tune the shipped policies (EWMA shift, steer margin, re-probe). */
    SystemConfig &
    withPlacementConfig(const PlacementConfig &config)
    {
        placementConfig = config;
        return *this;
    }

    /** Convenience: configure a second NxP device (Section IV-C3). */
    void
    enableSecondNxp()
    {
        platform.nxpDeviceCount = 2;
    }
};

/** A loaded multi-ISA process with its main thread. */
struct Process
{
    LoadedProgram image;
    Task *task = nullptr;
    std::unique_ptr<RegionHeap> hostHeap;
    /** Where the next spawned thread's host stack will be carved. */
    VAddr nextThreadStackTop = 0;
};

/**
 * The simulated heterogeneous-ISA machine.
 */
class FlickSystem
{
  public:
    explicit FlickSystem(SystemConfig config = {});

    FlickSystem(const FlickSystem &) = delete;
    FlickSystem &operator=(const FlickSystem &) = delete;

    /** Link @p program and load it into a new address space. */
    Process &load(const Program &program);

    // --- Calls ----------------------------------------------------------

    /**
     * Start @p symbol on @p process's main thread and return a future.
     * The call makes progress as simulated time advances (wait() on any
     * future, or advanceTime()); concurrent submissions from different
     * threads of the process overlap across the cores.
     */
    CallFuture submit(Process &process, const std::string &symbol,
                      std::vector<std::uint64_t> args = {});

    /** submit() for a spawned thread of @p process. */
    CallFuture submit(Process &process, Task &thread,
                      const std::string &symbol,
                      std::vector<std::uint64_t> args = {});

    /** submit() by address. */
    CallFuture submitVa(Process &process, Task &thread, VAddr va,
                        std::vector<std::uint64_t> args = {});

    /**
     * Call @p symbol on @p process's main thread, starting on the host
     * core; the thread migrates transparently at ISA boundaries. This is
     * submit() + wait: it blocks until the call returns.
     */
    std::uint64_t call(Process &process, const std::string &symbol,
                       std::vector<std::uint64_t> args = {});

    /** Call a function by address. */
    std::uint64_t callVa(Process &process, VAddr va,
                         std::vector<std::uint64_t> args = {});

    // --- Threads --------------------------------------------------------

    /**
     * Create another thread in @p process (what pthread_create would
     * do): maps a fresh host stack below the previous one and registers
     * the thread with the kernel. Pass the returned Task to submit().
     */
    Task &spawnThread(Process &process,
                      std::uint64_t stack_bytes = 256 * 1024);

    /**
     * Tear a spawned thread down: frees its NxP stacks back to the
     * device heaps and retires it from the kernel. The thread must not
     * have a call in flight.
     */
    void exitThread(Task &thread);

    /** Current simulated time. */
    Tick now() const { return _events.now(); }

    /** Let simulated time pass (e.g. host work between migrations). */
    void advanceTime(Tick t) { _events.runUntil(now() + t, true); }

    /** Allocate from an NxP device's local DRAM heap; returns a virtual
     *  address valid in every process (the unified NxP windows). */
    VAddr nxpMalloc(std::uint64_t bytes, std::uint64_t align = 16,
                    unsigned device = 0);

    /** Allocate from @p process's host-memory heap. */
    VAddr hostMalloc(Process &process, std::uint64_t bytes,
                     std::uint64_t align = 16);

    // --- Untimed harness access to process memory ----------------------

    /** Read @p len (1..8) bytes at @p va in @p process (untimed). */
    std::uint64_t readVa(const Process &process, VAddr va,
                         unsigned len = 8);

    /** Write @p len bytes at @p va in @p process (untimed). */
    void writeVa(Process &process, VAddr va, std::uint64_t value,
                 unsigned len = 8);

    /** Bulk write (workload setup; untimed like the paper's data load). */
    void writeBlock(Process &process, VAddr va, const void *data,
                    std::uint64_t len);

    /** Bulk read. */
    void readBlock(const Process &process, VAddr va, void *data,
                   std::uint64_t len);

    // --- Knobs and introspection ---------------------------------------

    /** Emulate a prior-work system: extra latency per migration. */
    void
    setExtraRoundTripLatency(Tick t)
    {
        _engine->setExtraRoundTripLatency(t);
    }

    /**
     * Stream a disassembled instruction trace of both cores to @p os
     * (pass nullptr to disable). Expensive; for debugging.
     */
    void enableInstructionTrace(std::ostream *os);

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os);

    const SystemConfig &config() const { return _config; }

    /**
     * Raw access to the simulated components, for tests, tools and
     * debugging harnesses. Groups what used to be loose accessors on
     * FlickSystem itself.
     */
    struct Debug
    {
        FlickSystem *sys;

        MemSystem &mem() const { return sys->_mem; }
        Kernel &kernel() const { return sys->_kernel; }
        MigrationEngine &engine() const { return *sys->_engine; }
        Hx64Core &hostCore() const { return sys->_hostCore; }
        Rv64Core &nxpCore(unsigned device = 0) const;
        NxpPlatform &nxpPlatform(unsigned device = 0) const;
        PageTableManager &pageTables() const { return sys->_ptm; }
        NativeRegistry &natives() const { return sys->_natives; }
        EventQueue &events() const { return sys->_events; }
        ChaosController &chaos() const { return sys->_chaos; }
        Tracer &trace() const { return sys->_tracer; }
        /** The installed placement policy (StaticPlacement by default). */
        PlacementPolicy &policy() const { return *sys->_placement; }
        DmaEngine &dma(unsigned device = 0) const;
        IrqController &irq() const { return sys->_irq; }
        RegionHeap &nxpHeap(unsigned device = 0) const;
        unsigned
        nxpDeviceCount() const
        {
            return sys->_config.platform.nxpDeviceCount;
        }
    };

    /** The debug/introspection harness. */
    Debug debug() { return Debug{this}; }

    // Deprecated forwarders, kept for source compatibility; prefer the
    // grouped debug() harness.

    /** @deprecated Use debug().mem(). */
    MemSystem &mem() { return debug().mem(); }
    /** @deprecated Use debug().kernel(). */
    Kernel &kernel() { return debug().kernel(); }
    /** @deprecated Use debug().engine(). */
    MigrationEngine &engine() { return debug().engine(); }
    /** @deprecated Use debug().hostCore(). */
    Hx64Core &hostCore() { return debug().hostCore(); }
    /** @deprecated Use debug().nxpCore(). */
    Rv64Core &nxpCore(unsigned device = 0) { return debug().nxpCore(device); }
    /** @deprecated Use debug().nxpPlatform(). */
    NxpPlatform &
    nxpPlatform(unsigned device = 0)
    {
        return debug().nxpPlatform(device);
    }
    /** @deprecated Use debug().nxpDeviceCount(). */
    unsigned nxpDeviceCount() const
    {
        return _config.platform.nxpDeviceCount;
    }
    /** @deprecated Use debug().pageTables(). */
    PageTableManager &pageTables() { return debug().pageTables(); }
    /** @deprecated Use debug().natives(). */
    NativeRegistry &natives() { return debug().natives(); }
    /** @deprecated Use debug().events(). */
    EventQueue &events() { return debug().events(); }
    /** @deprecated Use debug().nxpHeap(). */
    RegionHeap &nxpHeap() { return debug().nxpHeap(); }

  private:
    friend struct Debug;

    Addr translateDebug(const Process &process, VAddr va) const;

    /** Gap left unmapped between thread stacks (overflow tripwire). */
    static constexpr std::uint64_t threadStackGuard = 0x10000;

    SystemConfig _config;
    EventQueue _events;
    MemSystem _mem;
    ChaosController _chaos;
    Tracer _tracer;
    IrqController _irq;
    DmaEngine _dma;
    NxpPlatform _platformCtrl;
    PhysAllocator _hostAlloc;
    PhysAllocator _nxpAlloc;
    PageTableManager _ptm;
    Hx64Core _hostCore;
    Rv64Core _nxpCore;
    Kernel _kernel;
    ProgramLoader _loader;
    NativeRegistry _natives;
    RegionHeap _nxpWindowHeap;
    // Second NxP device (present when platform.nxpDeviceCount > 1).
    std::unique_ptr<Rv64Core> _nxp2Core;
    std::unique_ptr<NxpPlatform> _platformCtrl2;
    std::unique_ptr<DmaEngine> _dma2;
    std::unique_ptr<RegionHeap> _nxpWindowHeap2;
    std::unique_ptr<MigrationEngine> _engine;
    std::shared_ptr<PlacementPolicy> _placement;
    std::vector<std::unique_ptr<Process>> _processes;
};

} // namespace flick

#endif // FLICK_FLICK_SYSTEM_HH
