/**
 * @file
 * FlickSystem: the public facade of the simulated platform.
 *
 * Owns and wires every component — memories, cores, MMUs, DMA engines,
 * interrupt controller, kernel, loader and migration engine — and exposes
 * the workflow a user of the paper's system would have:
 *
 *     flick::FlickSystem sys(
 *         flick::SystemConfig{}.withDevices(2));      // boot the platform
 *     flick::Program prog;                            // multi-ISA code
 *     prog.addHostAsm(...); prog.addNxpAsm(...);
 *     auto &proc = sys.load(prog);                    // link + load + NX
 *
 *     // Synchronous, single-threaded:
 *     std::uint64_t r = sys.call(proc, "main", {arg0});
 *
 *     // Concurrent: each submit() starts a thread's call and returns a
 *     // future; the calls overlap across the host core and the NxPs.
 *     flick::Task &t2 = sys.spawnThread(proc);
 *     auto f1 = sys.submit(proc, flick::CallSpec("work").withArgs({0}));
 *     auto f2 = sys.submit(proc, flick::CallSpec("work")
 *                                    .withArgs({1}).onThread(t2));
 *     std::uint64_t a = f1.wait(), b = f2.wait();
 *     sys.exitThread(t2);
 *
 * Threads start on the host and migrate transparently whenever they call
 * across the ISA boundary.
 */

#ifndef FLICK_FLICK_SYSTEM_HH
#define FLICK_FLICK_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "flick/heap.hh"
#include "flick/migrator.hh"
#include "flick/native.hh"
#include "flick/nxp_platform.hh"
#include "flick/program.hh"
#include "flick/runtime.hh"
#include "isa/hx64/core.hh"
#include "isa/rv64/core.hh"
#include "loader/loader.hh"
#include "mem/dma.hh"
#include "mem/irq.hh"
#include "mem/mem_system.hh"
#include "os/kernel.hh"
#include "policy/policy.hh"
#include "sim/chaos.hh"
#include "sim/event_queue.hh"
#include "sim/timing_config.hh"
#include "spec/speculation.hh"
#include "vm/page_table.hh"
#include "vm/phys_allocator.hh"

namespace flick
{

/**
 * All configuration of a FlickSystem, defaulting to the paper's setup.
 *
 * The with*() setters return *this so a config can be built fluently in
 * the constructor call:
 *
 *     FlickSystem sys(SystemConfig{}
 *                         .withDevices(2)
 *                         .withNxpStackBytes(128 * 1024));
 */
struct SystemConfig
{
    TimingConfig timing;
    PlatformConfig platform;
    LoadOptions loadOptions;
    /** NxP stack allocated per thread on first migration. */
    std::uint64_t nxpStackBytes = 64 * 1024;
    /** Descriptor-ring slots per direction and device (in-flight bound). */
    unsigned ringSlots = 8;
    /** Fault-injection (chaos) configuration; disabled by default. */
    ChaosConfig chaos;
    /** Consecutive descriptor retransmissions tolerated per link. */
    unsigned retryBudget = 16;
    /**
     * Per-call completion deadline (0 = none). Expired calls fail with
     * CallStatus::deadlineExceeded. Nonzero deadlines arm the device
     * health heartbeat, perturbing the fault-free event stream, which
     * is why this is opt-in.
     */
    Tick callDeadline = 0;
    /**
     * Re-dispatch calls that lose their NxP (quarantine) to the
     * function's host-ISA twin instead of failing them; twins are the
     * symbols suffixed "__host" that load() registers automatically.
     */
    bool hostFallback = false;
    /** Progress-less heartbeats before a stalled NxP is quarantined. */
    unsigned healthStrikeLimit = 2;
    /**
     * Record trace milestones and gauges along the migration path
     * (DESIGN.md §10). Tracing is passive — a traced run is
     * tick-for-tick identical to an untraced one — but it allocates, so
     * it is opt-in; with it off no trace code touches any container.
     */
    bool trace = false;
    /**
     * Dispatch both interpreters through their per-text-page
     * decoded-instruction caches (DESIGN.md §13). On by default: the
     * cache is a simulator speed optimization with no timing model —
     * a cached run is tick-for-tick identical to a reference run
     * (asserted by tests/interp_diff_test.cpp). Turn it off to run the
     * byte-at-a-time reference decode path.
     */
    bool decodeCache = true;
    /**
     * Placement policy consulted at every NX-fault dispatch (DESIGN.md
     * §11). The default, staticPlacement, is the paper's link-time
     * pinning and keeps every run tick-for-tick identical to a
     * policy-less engine.
     */
    PlacementKind placement = PlacementKind::staticPlacement;
    /** Tunables of the shipped policies (EWMA shift, margins, ...). */
    PlacementConfig placementConfig;
    /** A caller-supplied policy instance; overrides `placement`. */
    std::shared_ptr<PlacementPolicy> placementPolicy;
    /**
     * Per-device core frequency overrides in Hz, indexed by device
     * (0 / absent = timing.nxpFreqHz). A heterogeneous fabric — a fast
     * near-NIC NxP next to slower near-storage ones — is configured by
     * overriding individual devices.
     */
    std::vector<std::uint64_t> deviceFreqHz;
    /**
     * Coalesce same-device migration descriptors staged within
     * timing.dmaBatchWindow into one chained DMA burst and one doorbell
     * write (DESIGN.md §12). Opt-in: with batching off (the default) the
     * event stream is tick-for-tick identical to pre-batching builds;
     * with it on, storm loads trade up to one batch window of added
     * latency per crossing for far fewer doorbells and DMA setups.
     */
    bool batching = false;
    /**
     * Admission control: maximum in-flight calls per device (staged +
     * deferred descriptors + running segment) before new submissions are
     * shed (0 = unbounded, the default). When every live device is at
     * the cap, submit() completes the call immediately with
     * CallStatus::shedLoad instead of queueing unbounded work, and the
     * load-aware placement policies route around saturated devices.
     */
    unsigned admissionCap = 0;
    /**
     * Multi-tenant QoS and deadline-aware admission (DESIGN.md §14).
     * Each loaded process is a tenant keyed by its address space; with
     * qos.enabled the engine runs per-tenant in-flight budgets, bounded
     * submission queues with weighted fair dequeue, and deadline-aware
     * admission shedding. Off by default: a QoS-disabled run is
     * tick-for-tick identical to a pre-QoS build (tests/qos_test.cpp).
     */
    QosConfig qos;
    /**
     * Record every QoS front-door decision (admit / queue / shed with
     * reason) in a per-run arrival trace readable via
     * FlickSystem::arrivalTrace(). Passive like the tracer: recording
     * perturbs nothing, but it allocates, so it is opt-in.
     */
    bool arrivalTrace = false;
    /**
     * Per-page access residency counters split by accessor (DESIGN.md
     * §15), read through debug().residency() and the policy view's
     * pageResidency(). Passive and opt-in: counting charges no latency
     * and schedules nothing, so a tracked run is tick-for-tick
     * identical to an untracked one; off, the counting branch never
     * runs and zero flick.residency.* counters are emitted
     * (tests/residency_test.cpp asserts both).
     */
    bool residencyTracking = false;
    /**
     * Hot-page migration between host and NxP DRAM (DESIGN.md §15).
     * Implies residencyTracking. Unlike the passive counters, an
     * enabled migrator schedules scan events, so enabling it
     * legitimately perturbs the event stream.
     */
    MigrationConfig migration;
    /**
     * Speculative dual execution (DESIGN.md §16): low-confidence
     * placement decisions race the call's host twin against the
     * migration and commit whichever side finishes first. Off by
     * default: with speculation.enabled false no SpeculationManager is
     * constructed, zero flick.spec.* counters are emitted and every run
     * is tick-for-tick identical to a pre-speculation build
     * (tests/spec_test.cpp asserts all three).
     */
    SpecConfig speculation;

    /** Number of NxP devices in the platform (any N >= 1). */
    SystemConfig &
    withDevices(unsigned count)
    {
        platform.nxpDeviceCount = count;
        return *this;
    }

    /** @deprecated Alias of withDevices(), kept for source compat. */
    SystemConfig &
    withNxpDevices(unsigned count)
    {
        return withDevices(count);
    }

    /** Override device @p device's core frequency (Hz). */
    SystemConfig &
    withDeviceFrequency(unsigned device, std::uint64_t hz)
    {
        if (deviceFreqHz.size() <= device)
            deviceFreqHz.resize(device + 1, 0);
        deviceFreqHz[device] = hz;
        return *this;
    }

    /** Override device @p device's local DRAM size. */
    SystemConfig &
    withDeviceDramBytes(unsigned device, std::uint64_t bytes)
    {
        if (platform.deviceDramOverride.size() <= device)
            platform.deviceDramOverride.resize(device + 1, 0);
        platform.deviceDramOverride[device] = bytes;
        return *this;
    }

    /** Enable descriptor batching (see `batching`). */
    SystemConfig &
    withBatching(bool on = true)
    {
        batching = on;
        return *this;
    }

    /** Cap in-flight calls per device; 0 disables (see `admissionCap`). */
    SystemConfig &
    withAdmissionControl(unsigned cap)
    {
        admissionCap = cap;
        return *this;
    }

    /** Enable (or disable) multi-tenant QoS with default tunables. */
    SystemConfig &
    withQos(bool on = true)
    {
        qos.enabled = on;
        return *this;
    }

    /** Enable multi-tenant QoS with explicit tunables (see `qos`). */
    SystemConfig &
    withQos(const QosConfig &cfg)
    {
        qos = cfg;
        qos.enabled = true;
        return *this;
    }

    /**
     * Weighted-fair-dequeue weight of @p tenant (tenants are numbered
     * in process load order; absent tenants weigh 1). Setting a weight
     * does not enable QoS by itself — combine with withQos().
     */
    SystemConfig &
    withTenantWeight(unsigned tenant, unsigned weight)
    {
        qos.setWeight(tenant, weight);
        return *this;
    }

    /** Record QoS front-door decisions (see `arrivalTrace`). */
    SystemConfig &
    withArrivalTrace(bool on = true)
    {
        arrivalTrace = on;
        return *this;
    }

    /** Enable per-page residency counters (see `residencyTracking`). */
    SystemConfig &
    withResidencyTracking(bool on = true)
    {
        residencyTracking = on;
        return *this;
    }

    /** Enable hot-page migration with default tunables. */
    SystemConfig &
    withPageMigration(bool on = true)
    {
        migration.enabled = on;
        if (on)
            residencyTracking = true;
        return *this;
    }

    /** Enable hot-page migration with explicit tunables. */
    SystemConfig &
    withPageMigration(const MigrationConfig &cfg)
    {
        migration = cfg;
        migration.enabled = true;
        residencyTracking = true;
        return *this;
    }

    /** Enable speculative dual execution with default tunables. */
    SystemConfig &
    withSpeculation(bool on = true)
    {
        speculation.enabled = on;
        return *this;
    }

    /** Enable speculative dual execution with explicit tunables. */
    SystemConfig &
    withSpeculation(const SpecConfig &cfg)
    {
        speculation = cfg;
        speculation.enabled = true;
        return *this;
    }

    /** Effective core frequency of device @p device. */
    std::uint64_t
    deviceFrequency(unsigned device) const
    {
        if (device < deviceFreqHz.size() && deviceFreqHz[device])
            return deviceFreqHz[device];
        return timing.nxpFreqHz;
    }

    SystemConfig &
    withNxpStackBytes(std::uint64_t bytes)
    {
        nxpStackBytes = bytes;
        return *this;
    }

    SystemConfig &
    withRingSlots(unsigned slots)
    {
        ringSlots = slots;
        return *this;
    }

    /**
     * Seed the chaos PRNG. The seed alone does not enable fault
     * injection (use withChaos()), so a seeded-but-disabled system is
     * tick-for-tick identical to a default one — which the chaos suite
     * asserts.
     */
    SystemConfig &
    withChaosSeed(std::uint64_t seed)
    {
        chaos.seed = seed;
        return *this;
    }

    /** Enable fault injection with the given fault classes/rates. */
    SystemConfig &
    withChaos(const ChaosConfig &config)
    {
        chaos = config;
        return *this;
    }

    SystemConfig &
    withRetryBudget(unsigned budget)
    {
        retryBudget = budget;
        return *this;
    }

    SystemConfig &
    withCallDeadline(Tick deadline)
    {
        callDeadline = deadline;
        return *this;
    }

    SystemConfig &
    withHostFallback(bool on = true)
    {
        hostFallback = on;
        return *this;
    }

    SystemConfig &
    withHealthStrikeLimit(unsigned strikes)
    {
        healthStrikeLimit = strikes;
        return *this;
    }

    /** Enable event tracing and latency attribution (debug().trace()). */
    SystemConfig &
    withTrace(bool on = true)
    {
        trace = on;
        return *this;
    }

    /**
     * Toggle the decoded-instruction cache (DESIGN.md §13). Off selects
     * the reference decode path; timing is identical either way.
     */
    SystemConfig &
    withDecodeCache(bool on = true)
    {
        decodeCache = on;
        return *this;
    }

    /** Select one of the shipped placement policies (DESIGN.md §11). */
    SystemConfig &
    withPlacement(PlacementKind kind)
    {
        placement = kind;
        return *this;
    }

    /** Install a caller-supplied placement policy instance. */
    SystemConfig &
    withPlacement(std::shared_ptr<PlacementPolicy> policy)
    {
        placementPolicy = std::move(policy);
        return *this;
    }

    /** Tune the shipped policies (EWMA shift, steer margin, re-probe). */
    SystemConfig &
    withPlacementConfig(const PlacementConfig &config)
    {
        placementConfig = config;
        return *this;
    }

    /** Convenience: configure a second NxP device (Section IV-C3). */
    void
    enableSecondNxp()
    {
        platform.nxpDeviceCount = 2;
    }
};

/** A loaded multi-ISA process with its main thread. */
struct Process
{
    LoadedProgram image;
    Task *task = nullptr;
    std::unique_ptr<RegionHeap> hostHeap;
    /** 4K-mapped migration-eligible region; lazily created by
     *  FlickSystem::migratableMalloc (DESIGN.md §15). */
    std::unique_ptr<RegionHeap> migratableHeap;
    /** Where the next spawned thread's host stack will be carved. */
    VAddr nextThreadStackTop = 0;
};

/**
 * Everything describing one cross-ISA call, built fluently:
 *
 *     sys.submit(proc, CallSpec("work").withArgs({seed, rounds}));
 *     sys.submit(proc, CallSpec("work")
 *                          .withArgs({1})
 *                          .onThread(t2)
 *                          .withDeadline(us(250))
 *                          .withPlacementHint(3));
 *
 * A CallSpec names its target by symbol or — via CallSpec::addr() — by
 * virtual address, runs on the process main thread unless onThread()
 * picks another, may carry a per-call deadline overriding
 * SystemConfig::callDeadline, and may hint the device its first dispatch
 * should land on (honored when that device holds the text and is not
 * quarantined; placement policies take over from the second dispatch).
 */
struct CallSpec
{
    CallSpec() = default;
    /*implicit*/ CallSpec(std::string sym) : symbol(std::move(sym)) {}

    /** Target a raw virtual address instead of a symbol. */
    static CallSpec
    addr(VAddr va)
    {
        CallSpec spec;
        spec.address = va;
        return spec;
    }

    /** Arguments, passed in the architectural argument registers. */
    CallSpec &
    withArgs(std::vector<std::uint64_t> a)
    {
        args = std::move(a);
        return *this;
    }

    /** Run on @p thread instead of the process main thread. */
    CallSpec &
    onThread(Task &thread)
    {
        task = &thread;
        return *this;
    }

    /**
     * Per-call completion deadline, overriding SystemConfig::callDeadline
     * for this call only. Like the config-wide deadline, a nonzero value
     * arms the device health heartbeat.
     */
    CallSpec &
    withDeadline(Tick ticks)
    {
        deadline = ticks;
        return *this;
    }

    /** Prefer @p device for the call's first NX-fault dispatch. */
    CallSpec &
    withPlacementHint(unsigned device)
    {
        placementHint = static_cast<int>(device);
        return *this;
    }

    /** Symbol to call; empty when targeting an address. */
    std::string symbol;
    /** Virtual address to call when `symbol` is empty. */
    VAddr address = 0;
    /** Argument registers. */
    std::vector<std::uint64_t> args;
    /** Thread to run on; nullptr = the process main thread. */
    Task *task = nullptr;
    /** Per-call deadline (0 = inherit SystemConfig::callDeadline). */
    Tick deadline = 0;
    /** First-dispatch device hint (-1 = none). */
    int placementHint = -1;
};

/**
 * The simulated heterogeneous-ISA machine.
 */
class FlickSystem
{
  public:
    explicit FlickSystem(SystemConfig config = {});

    FlickSystem(const FlickSystem &) = delete;
    FlickSystem &operator=(const FlickSystem &) = delete;

    /** Link @p program and load it into a new address space. */
    Process &load(const Program &program);

    // --- Calls ----------------------------------------------------------

    /**
     * Start the call described by @p spec and return a future. The call
     * makes progress as simulated time advances (wait() on any future,
     * or advanceTime()); concurrent submissions from different threads
     * of the process overlap across the cores. Under admission control
     * the future may already be done() with CallStatus::shedLoad.
     */
    CallFuture submit(Process &process, CallSpec spec);

    /** @deprecated Use submit(process, CallSpec(symbol).withArgs(...)). */
    CallFuture submit(Process &process, const std::string &symbol,
                      std::vector<std::uint64_t> args = {});

    /** @deprecated Use submit() with CallSpec::onThread(). */
    CallFuture submit(Process &process, Task &thread,
                      const std::string &symbol,
                      std::vector<std::uint64_t> args = {});

    /** @deprecated Use submit() with CallSpec::addr(). */
    CallFuture submitVa(Process &process, Task &thread, VAddr va,
                        std::vector<std::uint64_t> args = {});

    /**
     * Call @p symbol on @p process's main thread, starting on the host
     * core; the thread migrates transparently at ISA boundaries. This is
     * submit() + wait: it blocks until the call returns.
     */
    std::uint64_t call(Process &process, const std::string &symbol,
                       std::vector<std::uint64_t> args = {});

    /** Call a function by address. */
    std::uint64_t callVa(Process &process, VAddr va,
                         std::vector<std::uint64_t> args = {});

    // --- Threads --------------------------------------------------------

    /**
     * Create another thread in @p process (what pthread_create would
     * do): maps a fresh host stack below the previous one and registers
     * the thread with the kernel. Pass the returned Task to submit().
     */
    Task &spawnThread(Process &process,
                      std::uint64_t stack_bytes = 256 * 1024);

    /**
     * Tear a spawned thread down: frees its NxP stacks back to the
     * device heaps and retires it from the kernel. The thread must not
     * have a call in flight.
     */
    void exitThread(Task &thread);

    /** Current simulated time. */
    Tick now() const { return _events.now(); }

    /** Let simulated time pass (e.g. host work between migrations). */
    void advanceTime(Tick t) { _events.runUntil(now() + t, true); }

    /** Allocate from an NxP device's local DRAM heap; returns a virtual
     *  address valid in every process (the unified NxP windows). */
    VAddr nxpMalloc(std::uint64_t bytes, std::uint64_t align = 16,
                    unsigned device = 0);

    /** Allocate from @p process's host-memory heap. */
    VAddr hostMalloc(Process &process, std::uint64_t bytes,
                     std::uint64_t align = 16);

    /**
     * Allocate migration-eligible memory (DESIGN.md §15): a 4K-mapped
     * region whose frames start in host DRAM (@p device = -1) or NxP
     * device @p device's DRAM, and which the PageMigrator — when
     * enabled — may move between DRAMs as residency shifts. Unlike the
     * 1G-mapped NxP windows, every page here can be remapped
     * individually.
     */
    VAddr migratableMalloc(Process &process, std::uint64_t bytes,
                           int device = -1);

    // --- Untimed harness access to process memory ----------------------

    /** Read @p len (1..8) bytes at @p va in @p process (untimed). */
    std::uint64_t readVa(const Process &process, VAddr va,
                         unsigned len = 8);

    /** Write @p len bytes at @p va in @p process (untimed). */
    void writeVa(Process &process, VAddr va, std::uint64_t value,
                 unsigned len = 8);

    /** Bulk write (workload setup; untimed like the paper's data load). */
    void writeBlock(Process &process, VAddr va, const void *data,
                    std::uint64_t len);

    /** Bulk read. */
    void readBlock(const Process &process, VAddr va, void *data,
                   std::uint64_t len);

    // --- Knobs and introspection ---------------------------------------

    /** Emulate a prior-work system: extra latency per migration. */
    void
    setExtraRoundTripLatency(Tick t)
    {
        _engine->setExtraRoundTripLatency(t);
    }

    /**
     * Stream a disassembled instruction trace of both cores to @p os
     * (pass nullptr to disable). Expensive; for debugging.
     */
    void enableInstructionTrace(std::ostream *os);

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os);

    const SystemConfig &config() const { return _config; }

    /**
     * The recorded QoS front-door decisions (empty unless
     * withArrivalTrace() was set). Grows for the run's lifetime.
     */
    const std::vector<QosArrival> &
    arrivalTrace() const
    {
        return _engine->arrivalTrace();
    }

    /**
     * QoS tenant id of @p process (its index in load order). Meaningful
     * with QoS enabled; this is the <k> in the per-tenant _cr3#<k> stat
     * suffixes and the index withTenantWeight() takes.
     */
    unsigned
    tenantIndex(const Process &process)
    {
        return _engine->tenantIndex(process.image.cr3);
    }

    /**
     * Raw access to the simulated components, for tests, tools and
     * debugging harnesses. Groups what used to be loose accessors on
     * FlickSystem itself.
     */
    struct Debug
    {
        FlickSystem *sys;

        MemSystem &mem() const { return sys->_mem; }
        Kernel &kernel() const { return sys->_kernel; }
        MigrationEngine &engine() const { return *sys->_engine; }
        Hx64Core &hostCore() const { return sys->_hostCore; }
        Rv64Core &nxpCore(unsigned device = 0) const;
        NxpPlatform &nxpPlatform(unsigned device = 0) const;
        PageTableManager &pageTables() const { return sys->_ptm; }
        NativeRegistry &natives() const { return sys->_natives; }
        EventQueue &events() const { return sys->_events; }
        ChaosController &chaos() const { return sys->_chaos; }
        Tracer &trace() const { return sys->_tracer; }
        /** The installed placement policy (StaticPlacement by default). */
        PlacementPolicy &policy() const { return *sys->_placement; }
        DmaEngine &dma(unsigned device = 0) const;
        IrqController &irq() const { return sys->_irq; }
        RegionHeap &nxpHeap(unsigned device = 0) const;
        /** The residency tracker; nullptr unless residencyTracking. */
        ResidencyTracker *
        residency() const
        {
            return sys->_residencyTracker.get();
        }
        /** The page migrator; nullptr unless migration.enabled. */
        PageMigrator *
        migrator() const
        {
            return sys->_migrator.get();
        }
        /** The speculation manager; nullptr unless speculation.enabled. */
        SpeculationManager *
        speculation() const
        {
            return sys->_speculation.get();
        }
        unsigned
        nxpDeviceCount() const
        {
            return sys->_config.platform.nxpDeviceCount;
        }
    };

    /** The debug/introspection harness. */
    Debug debug() { return Debug{this}; }

    // Deprecated forwarders, kept for source compatibility; prefer the
    // grouped debug() harness.

    /** @deprecated Use debug().mem(). */
    MemSystem &mem() { return debug().mem(); }
    /** @deprecated Use debug().kernel(). */
    Kernel &kernel() { return debug().kernel(); }
    /** @deprecated Use debug().engine(). */
    MigrationEngine &engine() { return debug().engine(); }
    /** @deprecated Use debug().hostCore(). */
    Hx64Core &hostCore() { return debug().hostCore(); }
    /** @deprecated Use debug().nxpCore(). */
    Rv64Core &nxpCore(unsigned device = 0) { return debug().nxpCore(device); }
    /** @deprecated Use debug().nxpPlatform(). */
    NxpPlatform &
    nxpPlatform(unsigned device = 0)
    {
        return debug().nxpPlatform(device);
    }
    /** @deprecated Use debug().nxpDeviceCount(). */
    unsigned nxpDeviceCount() const
    {
        return _config.platform.nxpDeviceCount;
    }
    /** @deprecated Use debug().pageTables(). */
    PageTableManager &pageTables() { return debug().pageTables(); }
    /** @deprecated Use debug().natives(). */
    NativeRegistry &natives() { return debug().natives(); }
    /** @deprecated Use debug().events(). */
    EventQueue &events() { return debug().events(); }
    /** @deprecated Use debug().nxpHeap(). */
    RegionHeap &nxpHeap() { return debug().nxpHeap(); }

  private:
    friend struct Debug;

    Addr translateDebug(const Process &process, VAddr va) const;

    /** Gap left unmapped between thread stacks (overflow tripwire). */
    static constexpr std::uint64_t threadStackGuard = 0x10000;

    SystemConfig _config;
    EventQueue _events;
    MemSystem _mem;
    ChaosController _chaos;
    Tracer _tracer;
    IrqController _irq;
    DmaEngine _dma;
    NxpPlatform _platformCtrl;
    PhysAllocator _hostAlloc;
    PhysAllocator _nxpAlloc;
    PageTableManager _ptm;
    Hx64Core _hostCore;
    Rv64Core _nxpCore;
    Kernel _kernel;
    ProgramLoader _loader;
    NativeRegistry _natives;
    RegionHeap _nxpWindowHeap;
    // Devices 1..N-1 of the fabric (device 0 lives in the members above);
    // index [k-1] is device k.
    std::vector<std::unique_ptr<Rv64Core>> _extraNxpCores;
    std::vector<std::unique_ptr<NxpPlatform>> _extraPlatformCtrls;
    std::vector<std::unique_ptr<DmaEngine>> _extraDmas;
    std::vector<std::unique_ptr<RegionHeap>> _extraWindowHeaps;
    std::unique_ptr<MigrationEngine> _engine;
    std::shared_ptr<PlacementPolicy> _placement;
    std::unique_ptr<ResidencyTracker> _residencyTracker;
    std::unique_ptr<PageMigrator> _migrator;
    std::unique_ptr<SpeculationManager> _speculation;
    std::vector<std::unique_ptr<Process>> _processes;
};

} // namespace flick

#endif // FLICK_FLICK_SYSTEM_HH
