/**
 * @file
 * FlickSystem: the public facade of the simulated platform.
 *
 * Owns and wires every component — memories, cores, MMUs, DMA engine,
 * interrupt controller, kernel, loader and migration engine — and exposes
 * the workflow a user of the paper's system would have:
 *
 *     flick::FlickSystem sys;                    // boot the platform
 *     flick::Program prog;                       // write multi-ISA code
 *     prog.addHostAsm(...); prog.addNxpAsm(...);
 *     auto &proc = sys.load(prog);               // link + load + NX bits
 *     std::uint64_t r = sys.call(proc, "main", {arg0});
 *
 * Threads start on the host and migrate transparently whenever they call
 * across the ISA boundary.
 */

#ifndef FLICK_FLICK_SYSTEM_HH
#define FLICK_FLICK_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "flick/heap.hh"
#include "flick/native.hh"
#include "flick/nxp_platform.hh"
#include "flick/program.hh"
#include "flick/runtime.hh"
#include "isa/hx64/core.hh"
#include "isa/rv64/core.hh"
#include "loader/loader.hh"
#include "mem/dma.hh"
#include "mem/irq.hh"
#include "mem/mem_system.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/timing_config.hh"
#include "vm/page_table.hh"
#include "vm/phys_allocator.hh"

namespace flick
{

/** All configuration of a FlickSystem, defaulting to the paper's setup. */
struct SystemConfig
{
    TimingConfig timing;
    PlatformConfig platform;
    LoadOptions loadOptions;
    /** NxP stack allocated per thread on first migration. */
    std::uint64_t nxpStackBytes = 64 * 1024;

    /** Convenience: configure a second NxP device (Section IV-C3). */
    void
    enableSecondNxp()
    {
        platform.nxpDeviceCount = 2;
    }
};

/** A loaded multi-ISA process with its main thread. */
struct Process
{
    LoadedProgram image;
    Task *task = nullptr;
    std::unique_ptr<RegionHeap> hostHeap;
};

/**
 * The simulated heterogeneous-ISA machine.
 */
class FlickSystem
{
  public:
    explicit FlickSystem(SystemConfig config = {});

    FlickSystem(const FlickSystem &) = delete;
    FlickSystem &operator=(const FlickSystem &) = delete;

    /** Link @p program and load it into a new address space. */
    Process &load(const Program &program);

    /**
     * Call @p symbol on @p process's main thread, starting on the host
     * core; the thread migrates transparently at ISA boundaries.
     */
    std::uint64_t call(Process &process, const std::string &symbol,
                       std::vector<std::uint64_t> args = {});

    /** Call a function by address. */
    std::uint64_t callVa(Process &process, VAddr va,
                         std::vector<std::uint64_t> args = {});

    /** Current simulated time. */
    Tick now() const { return _events.now(); }

    /** Let simulated time pass (e.g. host work between migrations). */
    void advanceTime(Tick t) { _events.runUntil(now() + t, true); }

    /** Allocate from an NxP device's local DRAM heap; returns a virtual
     *  address valid in every process (the unified NxP windows). */
    VAddr nxpMalloc(std::uint64_t bytes, std::uint64_t align = 16,
                    unsigned device = 0);

    /** Allocate from @p process's host-memory heap. */
    VAddr hostMalloc(Process &process, std::uint64_t bytes,
                     std::uint64_t align = 16);

    // --- Untimed harness access to process memory ----------------------

    /** Read @p len (1..8) bytes at @p va in @p process (untimed). */
    std::uint64_t readVa(const Process &process, VAddr va,
                         unsigned len = 8);

    /** Write @p len bytes at @p va in @p process (untimed). */
    void writeVa(Process &process, VAddr va, std::uint64_t value,
                 unsigned len = 8);

    /** Bulk write (workload setup; untimed like the paper's data load). */
    void writeBlock(Process &process, VAddr va, const void *data,
                    std::uint64_t len);

    /** Bulk read. */
    void readBlock(const Process &process, VAddr va, void *data,
                   std::uint64_t len);

    // --- Knobs and introspection ---------------------------------------

    /** Emulate a prior-work system: extra latency per migration. */
    void
    setExtraRoundTripLatency(Tick t)
    {
        _engine->setExtraRoundTripLatency(t);
    }

    /**
     * Stream a disassembled instruction trace of both cores to @p os
     * (pass nullptr to disable). Expensive; for debugging.
     */
    void enableInstructionTrace(std::ostream *os);

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os);

    const SystemConfig &config() const { return _config; }
    MemSystem &mem() { return _mem; }
    Kernel &kernel() { return _kernel; }
    MigrationEngine &engine() { return *_engine; }
    Hx64Core &hostCore() { return _hostCore; }
    Rv64Core &nxpCore(unsigned device = 0);
    NxpPlatform &nxpPlatform(unsigned device = 0);
    /** Number of NxP devices in the platform. */
    unsigned nxpDeviceCount() const
    {
        return _config.platform.nxpDeviceCount;
    }
    PageTableManager &pageTables() { return _ptm; }
    NativeRegistry &natives() { return _natives; }
    EventQueue &events() { return _events; }
    RegionHeap &nxpHeap() { return _nxpWindowHeap; }

  private:
    Addr translateDebug(const Process &process, VAddr va) const;

    SystemConfig _config;
    EventQueue _events;
    MemSystem _mem;
    IrqController _irq;
    DmaEngine _dma;
    NxpPlatform _platformCtrl;
    PhysAllocator _hostAlloc;
    PhysAllocator _nxpAlloc;
    PageTableManager _ptm;
    Hx64Core _hostCore;
    Rv64Core _nxpCore;
    Kernel _kernel;
    ProgramLoader _loader;
    NativeRegistry _natives;
    Addr _kernelBufPa;
    Addr _hostInboxPa;
    RegionHeap _nxpWindowHeap;
    // Second NxP device (present when platform.nxpDeviceCount > 1).
    std::unique_ptr<Rv64Core> _nxp2Core;
    std::unique_ptr<NxpPlatform> _platformCtrl2;
    std::unique_ptr<DmaEngine> _dma2;
    std::unique_ptr<RegionHeap> _nxpWindowHeap2;
    Addr _hostInbox2Pa = 0;
    std::unique_ptr<MigrationEngine> _engine;
    std::vector<std::unique_ptr<Process>> _processes;
};

} // namespace flick

#endif // FLICK_FLICK_SYSTEM_HH
