#include "flick/migrator.hh"

#include "loader/loader.hh"
#include "sim/logging.hh"
#include "vm/mmu.hh"

namespace flick
{

PageMigrator::PageMigrator(EventQueue &events, MemSystem &mem,
                           PageTableManager &ptm, ResidencyTracker &tracker,
                           PhysAllocator &host_alloc,
                           const MigrationConfig &config)
    : _events(events), _mem(mem), _ptm(ptm), _tracker(tracker),
      _hostAlloc(host_alloc), _cfg(config), _stats("flick.residency")
{
}

void
PageMigrator::addDevice(DmaEngine *dma, RegionHeap *window_heap)
{
    _dmas.push_back(dma);
    _heaps.push_back(window_heap);
}

void
PageMigrator::start()
{
    if (!_cfg.enabled)
        return;
    _events.scheduleIn(_cfg.scanInterval, "page-migrator-scan",
                       [this] { scan(); });
}

void
PageMigrator::manage(Addr cr3, VAddr va, std::uint64_t bytes)
{
    VAddr first = va & ~VAddr(4095);
    VAddr last = (va + bytes - 1) & ~VAddr(4095);
    for (VAddr page = first; page <= last; page += 4096)
        _pages.emplace(std::make_pair(cr3, page), ManagedPage{});
    _stats.set("pages_managed", _pages.size());
}

int
PageMigrator::holderOf(Addr pa) const
{
    const PlatformConfig &p = _mem.platform();
    if (p.inHostDram(pa))
        return -1;
    unsigned dev;
    if (p.inBarDram(pa, dev))
        return static_cast<int>(dev);
    return -2;
}

bool
PageMigrator::migrateNow(Addr cr3, VAddr va, int dest)
{
    VAddr page = va & ~VAddr(4095);
    auto tr = _ptm.translate(cr3, page);
    if (!tr || tr->size != PageSize::size4K)
        return false;
    if (holderOf(tr->pa & ~Addr(4095)) == dest)
        return false;
    if (dest >= static_cast<int>(_dmas.size()) || dest < -1)
        return false;
    _queue.push_back({cr3, page, dest});
    pump();
    return true;
}

void
PageMigrator::scan()
{
    _stats.inc("scans");
    unsigned planned = 0;
    for (auto &[id, pg] : _pages) {
        if (pg.cooldown) {
            --pg.cooldown;
            continue;
        }
        auto tr = _ptm.translate(id.first, id.second);
        if (!tr || tr->size != PageSize::size4K)
            continue;
        Addr frame = tr->pa & ~Addr(4095);
        std::uint64_t key =
            _mem.canonicalPageKey(Requester::debug, frame);
        const std::vector<std::uint64_t> *row = _tracker.counts(key);
        if (pg.lastCounts.size() < _tracker.accessors())
            pg.lastCounts.resize(_tracker.accessors(), 0);
        if (!row)
            continue;

        // This epoch's per-accessor access deltas.
        std::uint64_t total = 0, best = 0;
        unsigned best_a = 0;
        for (unsigned a = 0; a < _tracker.accessors(); ++a) {
            // Counters are monotone per frame; a smaller value than the
            // snapshot means the page changed frames since last epoch.
            std::uint64_t delta = (*row)[a] >= pg.lastCounts[a]
                                      ? (*row)[a] - pg.lastCounts[a]
                                      : (*row)[a];
            pg.lastCounts[a] = (*row)[a];
            total += delta;
            if (delta > best) {
                best = delta;
                best_a = a;
            }
        }
        if (total < _cfg.minAccesses)
            continue;
        if (best * 100 < total * _cfg.dominancePct)
            continue;

        int holder = holderOf(frame);
        int dest = best_a == 0 ? -1 : static_cast<int>(best_a - 1);
        if (dest == holder || holder == -2)
            continue;
        if (dest >= 0 && holder >= 0) {
            // Device-to-device moves go through host DRAM: this scan
            // hops the page to host; if the same device still dominates
            // next epoch, the second hop localizes it.
            dest = -1;
            _stats.inc("migration_two_hop");
        }
        if (planned >= _cfg.maxPerScan)
            break;
        ++planned;
        // Rest the page for the copy's own lifetime plus the configured
        // cooldown, so a queued page is never planned twice.
        pg.cooldown = _cfg.cooldownScans;
        _queue.push_back({id.first, id.second, dest});
    }
    pump();
    _events.scheduleIn(_cfg.scanInterval, "page-migrator-scan",
                       [this] { scan(); });
}

void
PageMigrator::pump()
{
    while (!_inFlight && !_queue.empty()) {
        Plan plan = _queue.front();
        auto tr = _ptm.translate(plan.cr3, plan.va);
        if (!tr || tr->size != PageSize::size4K) {
            _queue.pop_front();
            continue;
        }
        Addr frame = tr->pa & ~Addr(4095);
        int holder = holderOf(frame);
        if (holder == plan.dest || holder == -2) {
            _queue.pop_front();
            continue;
        }

        // In-flight DMA exclusion: the copy shares the device's engine
        // with descriptor traffic; while that engine has transfers in
        // flight or queued, starting a page copy would interleave with
        // (and delay) live call migrations. Leave the plan queued and
        // retry at the next scan/commit boundary.
        unsigned dev =
            plan.dest >= 0 ? static_cast<unsigned>(plan.dest)
                           : static_cast<unsigned>(holder);
        DmaEngine *dma = _dmas.at(dev);
        if (dma->busy() || dma->queuedTransfers() > 0) {
            _stats.inc("migration_deferred_dma");
            return;
        }

        _queue.pop_front();
        InFlight f;
        f.plan = plan;
        f.holder = holder;
        f.oldPa = frame;
        if (plan.dest < 0) {
            f.newPa = _hostAlloc.allocate(4096);
        } else {
            RegionHeap *heap = _heaps.at(plan.dest);
            f.destWinVa = heap->allocate(4096, 4096);
            std::uint64_t off =
                f.destWinVa - layout::nxpWindowBaseFor(plan.dest);
            f.newPa = _mem.platform().barBase(plan.dest) + off;
        }
        f.srcKey = _mem.canonicalPageKey(Requester::debug, f.oldPa);
        _inFlight = f;
        issueCopy();
    }
}

void
PageMigrator::issueCopy()
{
    InFlight &f = *_inFlight;
    f.dirty = false;
    const PlatformConfig &p = _mem.platform();
    auto done = [this] {
        // Bytes landed; charge a short kernel window for the commit
        // (PTE rewrite + shootdown IPIs), re-checking dirtiness then.
        _events.scheduleIn(_mem.timing().hostToHostDram * 4,
                           "page-migrator-commit", [this] { commit(); });
    };
    if (f.plan.dest >= 0) {
        Addr local = p.nxpDramLocalBase +
                     (f.newPa - p.barBase(f.plan.dest));
        _dmas.at(f.plan.dest)->copyHostToNxp(f.oldPa, local, 4096, done);
    } else {
        Addr local = p.nxpDramLocalBase + (f.oldPa - p.barBase(f.holder));
        _dmas.at(f.holder)->copyNxpToHost(local, f.newPa, 4096, -1, done);
    }
}

void
PageMigrator::commit()
{
    InFlight &f = *_inFlight;
    if (f.dirty) {
        if (f.retries >= _cfg.maxCopyRetries) {
            abortMigration();
            return;
        }
        ++f.retries;
        _stats.inc("migration_retries");
        issueCopy();
        return;
    }

    // Quiesce is over and the copy is clean: commit atomically (within
    // this event) — repoint the PTE, invalidate decoded text keyed on
    // the old frame (remap broadcasts notifyMappingChange), shoot down
    // every TLB, then release the old frame.
    InFlight fin = *_inFlight;
    _inFlight.reset(); // before remap: its invalidateAll must not re-dirty
    Addr old_pa = _ptm.remap(fin.plan.cr3, fin.plan.va, fin.newPa);
    if (old_pa != fin.oldPa)
        panic("migration commit: page %#llx moved under us",
              (unsigned long long)fin.plan.va);
    for (Mmu *m : _mmus)
        m->flushTlbs();
    if (fin.holder < 0) {
        _hostAlloc.free(fin.oldPa, 4096);
    } else {
        const PlatformConfig &p = _mem.platform();
        _heaps.at(fin.holder)->free(layout::nxpWindowBaseFor(fin.holder) +
                                    (fin.oldPa - p.barBase(fin.holder)));
    }
    auto it = _pages.find({fin.plan.cr3, fin.plan.va});
    if (it != _pages.end()) {
        it->second.cooldown = _cfg.cooldownScans;
        // The new frame's counters start from zero: drop the old
        // frame's snapshot so the next epoch's deltas don't wrap.
        it->second.lastCounts.clear();
    }
    _stats.inc("migrations");
    if (fin.plan.dest < 0)
        _stats.inc("migrations_to_host");
    else
        _stats.inc("migrations_to_dev" + std::to_string(fin.plan.dest));
    pump();
}

void
PageMigrator::abortMigration()
{
    InFlight fin = *_inFlight;
    _inFlight.reset();
    if (fin.plan.dest < 0)
        _hostAlloc.free(fin.newPa, 4096);
    else
        _heaps.at(fin.plan.dest)->free(fin.destWinVa);
    _stats.inc("migration_aborts");
    pump();
}

void
PageMigrator::invalidatePage(std::uint64_t key)
{
    if (_inFlight && key == _inFlight->srcKey)
        _inFlight->dirty = true;
}

void
PageMigrator::invalidateAll()
{
    if (_inFlight)
        _inFlight->dirty = true;
}

} // namespace flick
