/**
 * @file
 * Hot-page migration between host and NxP DRAM (DESIGN.md §15).
 *
 * The residency counters say who touches a page; when the dominant
 * accessor is not the DRAM holding it, every one of those accesses pays
 * a bridge or peer crossing. The PageMigrator closes that gap at
 * runtime: it periodically scans the managed pages, picks the ones
 * whose recent accesses are dominated by a remote accessor, and moves
 * them over the existing DMA engines with the full remap protocol —
 * copy the frame, repoint the 4K PTE (PageTableManager::remap, which
 * broadcasts the decode-cache invalidation), shoot down every core's
 * TLBs, free the old frame. Writes racing the copy are caught through
 * the same write-listener path the decoded-instruction caches use
 * (DESIGN.md §13): a dirtied source page is recopied (bounded retries),
 * so no store is ever lost to a migration.
 *
 * Migration is opt-in (SystemConfig::withPageMigration). It schedules
 * scan events, so — unlike the passive residency counters — an enabled
 * migrator legitimately perturbs the event stream; disabled, none of
 * this code exists and runs are tick-for-tick identical to the seed.
 */

#ifndef FLICK_FLICK_MIGRATOR_HH
#define FLICK_FLICK_MIGRATOR_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "flick/heap.hh"
#include "mem/dma.hh"
#include "mem/mem_system.hh"
#include "mem/residency.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "vm/page_table.hh"
#include "vm/phys_allocator.hh"

namespace flick
{

class Mmu;

/** Tunables of the hot-page migrator (SystemConfig::withPageMigration). */
struct MigrationConfig
{
    /** Master switch; off means the migrator is never constructed. */
    bool enabled = false;
    /** Period of the residency scan. */
    Tick scanInterval = us(50);
    /**
     * Minimum accesses to a page within one scan epoch before it is
     * considered for migration at all — cold pages are never moved.
     */
    std::uint64_t minAccesses = 16;
    /**
     * Share (percent) of an epoch's accesses the dominant accessor must
     * own before the page follows it. Together with cooldownScans this
     * is the ping-pong hysteresis: a page two cores fight over near
     * 50/50 stays put.
     */
    unsigned dominancePct = 60;
    /** Scan epochs a freshly migrated page rests before moving again. */
    unsigned cooldownScans = 4;
    /** Maximum migrations planned per scan epoch. */
    unsigned maxPerScan = 4;
    /** Recopy attempts when writes keep dirtying the source mid-copy. */
    unsigned maxCopyRetries = 3;
};

/**
 * Moves hot 4K pages between DRAMs over the DMA engines.
 *
 * Registered as a DecodeSink so the MemSystem write-listener fan-out
 * doubles as the migrator's dirty-page detector during copy flight.
 */
class PageMigrator : public DecodeSink
{
  public:
    PageMigrator(EventQueue &events, MemSystem &mem, PageTableManager &ptm,
                 ResidencyTracker &tracker, PhysAllocator &host_alloc,
                 const MigrationConfig &config);

    /** Register device @p k's DMA engine and window heap (frame source). */
    void addDevice(DmaEngine *dma, RegionHeap *window_heap);

    /** Register a core MMU for post-remap TLB shootdown. */
    void addMmu(Mmu *mmu) { _mmus.push_back(mmu); }

    /** Arm the recurring residency scan (call once, after addDevice). */
    void start();

    /**
     * Put [va, va+bytes) in @p cr3 under migration management. Pages
     * must be 4K-mapped (FlickSystem::migratableMalloc guarantees it).
     */
    void manage(Addr cr3, VAddr va, std::uint64_t bytes);

    /**
     * Test/tool hook: queue an immediate migration of @p va's page to
     * @p dest (-1 = host DRAM, k = device k's DRAM), bypassing the
     * residency thresholds but not the copy/remap protocol. @return
     * false if the page is unmapped or already held by @p dest.
     */
    bool migrateNow(Addr cr3, VAddr va, int dest);

    /** True when no migration is queued or in flight. */
    bool idle() const { return !_inFlight && _queue.empty(); }

    /** The flick.residency.* migration counters. */
    StatGroup &stats() { return _stats; }

    // DecodeSink: dirty detection for the page being copied.
    void invalidatePage(std::uint64_t key) override;
    void invalidateAll() override;

  private:
    struct Plan
    {
        Addr cr3;
        VAddr va;  //!< Page-aligned.
        int dest;  //!< -1 = host, k = device k.
    };

    struct InFlight
    {
        Plan plan;
        int holder;           //!< Source DRAM (-1 host, k device).
        Addr oldPa;           //!< Source frame (host PA space).
        Addr newPa;           //!< Destination frame (host PA space).
        VAddr destWinVa = 0;  //!< Window-heap block backing newPa (device).
        std::uint64_t srcKey; //!< Canonical page key of the source frame.
        bool dirty = false;   //!< A write touched the source mid-copy.
        unsigned retries = 0;
    };

    /** DRAM holding host-space frame @p pa: -1 host, k device, -2 other. */
    int holderOf(Addr pa) const;

    void scan();
    void pump();
    void issueCopy();
    void commit();
    void abortMigration();

    EventQueue &_events;
    MemSystem &_mem;
    PageTableManager &_ptm;
    ResidencyTracker &_tracker;
    PhysAllocator &_hostAlloc;
    MigrationConfig _cfg;
    std::vector<DmaEngine *> _dmas;
    std::vector<RegionHeap *> _heaps;
    std::vector<Mmu *> _mmus;

    struct ManagedPage
    {
        unsigned cooldown = 0;
        std::vector<std::uint64_t> lastCounts; //!< Snapshot per accessor.
    };
    /** (cr3, page VA) -> state; std::map for deterministic scan order. */
    std::map<std::pair<Addr, VAddr>, ManagedPage> _pages;

    std::deque<Plan> _queue;
    std::optional<InFlight> _inFlight;
    StatGroup _stats;
};

} // namespace flick

#endif // FLICK_FLICK_MIGRATOR_HH
