/**
 * @file
 * Migration descriptors.
 *
 * The unit of Flick's thread migration: a fixed 128-byte record carrying
 * the call target, the thread identity (PID, CR3), the NxP stack pointer
 * and the ABI arguments or return value. Descriptors are written into
 * kernel/device buffers in simulated memory and moved across PCIe by the
 * DMA engine in a single burst (Section IV-B1).
 */

#ifndef FLICK_FLICK_DESCRIPTOR_HH
#define FLICK_FLICK_DESCRIPTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/sparse_memory.hh"
#include "vm/pte.hh"

namespace flick
{

/** Direction/meaning of a descriptor. */
enum class DescriptorKind : std::uint32_t
{
    invalid = 0,
    hostToNxpCall = 1,   //!< Host calls an NxP function.
    nxpToHostCall = 2,   //!< NxP calls a host function.
    hostToNxpReturn = 3, //!< Host function finished; value back to NxP.
    nxpToHostReturn = 4, //!< NxP function finished; value back to host.
};

/** Printable descriptor-kind name, for diagnostics. */
const char *descriptorKindName(DescriptorKind kind);

/**
 * A migration descriptor (128 bytes on the wire).
 *
 * The wire format carries two integrity fields so the fabric does not
 * have to be trusted: a per-link sequence number (offset 96) and a
 * CRC-64 checksum over bytes [0, 120) stored in the final 8 bytes.
 * Receivers verify both before acting on a descriptor and NAK a slot
 * whose checksum fails, triggering a retransmission from the sender's
 * staging copy.
 */
struct MigrationDescriptor
{
    static constexpr std::uint64_t wireBytes = 128;
    static constexpr unsigned maxArgs = 6;
    /** Bytes covered by the trailing checksum (everything before it). */
    static constexpr std::uint64_t checksummedBytes = wireBytes - 8;

    using Wire = std::array<std::uint8_t, wireBytes>;

    DescriptorKind kind = DescriptorKind::invalid;
    std::uint32_t pid = 0;
    VAddr target = 0;       //!< Function to call (call kinds).
    Addr cr3 = 0;           //!< Page table base shared by both cores.
    VAddr nxpSp = 0;        //!< Thread's NxP stack pointer.
    std::uint64_t retval = 0; //!< Return value (return kinds).
    std::uint32_t nargs = 0;
    std::array<std::uint64_t, maxArgs> args{};
    std::uint64_t seq = 0;  //!< Per-link FIFO sequence number.
    /**
     * Generation token of the in-flight call this descriptor belongs
     * to. A call that is cancelled or failed (deadline, dead device)
     * releases its PID immediately; a descriptor from the dead call can
     * still be in flight and must not be delivered to a later call that
     * reuses the PID. Receivers drop descriptors whose callId does not
     * match the PID's current in-flight call.
     */
    std::uint64_t callId = 0;

    /** The argument array as a vector (ABI handoff convenience). */
    std::vector<std::uint64_t>
    argVector() const
    {
        return std::vector<std::uint64_t>(args.begin(),
                                          args.begin() + nargs);
    }

    /**
     * Serialize to the 128-byte wire format (little endian), computing
     * and embedding the trailing checksum.
     */
    Wire toWire() const;

    /**
     * Deserialize from the wire format. Does not verify integrity;
     * receivers call wireIntact() on the raw bytes first.
     */
    static MigrationDescriptor fromWire(const Wire &wire);

    /** CRC-64 of @p wire's checksummed prefix. */
    static std::uint64_t wireChecksum(const Wire &wire);

    /** Does @p wire's embedded checksum match its contents? */
    static bool wireIntact(const Wire &wire);
};

} // namespace flick

#endif // FLICK_FLICK_DESCRIPTOR_HH
