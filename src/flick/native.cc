#include "flick/native.hh"

#include "sim/logging.hh"

namespace flick
{

std::uint64_t
NativeContext::readVa(VAddr va, unsigned len)
{
    TranslationResult tr = _core.mmu().translate(va, AccessType::read);
    if (tr.fault != Fault::none)
        panic("native readVa fault at %#llx (%s)", (unsigned long long)va,
              faultName(tr.fault));
    std::uint64_t v = 0;
    _core.mem().readInt(Requester::debug, tr.pa, len, v);
    return v;
}

void
NativeContext::writeVa(VAddr va, std::uint64_t value, unsigned len)
{
    TranslationResult tr = _core.mmu().translate(va, AccessType::write);
    if (tr.fault != Fault::none)
        panic("native writeVa fault at %#llx (%s)", (unsigned long long)va,
              faultName(tr.fault));
    _core.mem().writeInt(Requester::debug, tr.pa, value, len);
}

VAddr
NativeRegistry::add(NativeFn fn)
{
    constexpr std::uint64_t slotBytes = 16;
    constexpr std::uint64_t slotsPerPage = 4096 / slotBytes;
    std::uint64_t &slot = fn.isa == IsaKind::hx64 ? _nextHostSlot
                                                  : _nextNxpSlot;
    if (slot >= slotsPerPage)
        fatal("native gate page full (%llu functions)",
              (unsigned long long)slotsPerPage);
    VAddr base = fn.isa == IsaKind::hx64 ? layout::nativeGateHost
                                         : layout::nativeGateNxp;
    fn.va = base + slot * slotBytes;
    ++slot;
    if (fn.nargs > 6)
        fatal("native function %s: %u args (max 6)", fn.name.c_str(),
              fn.nargs);
    _fns.push_back(std::move(fn));
    return _fns.back().va;
}

const NativeFn *
NativeRegistry::find(VAddr va) const
{
    for (const auto &fn : _fns) {
        if (fn.va == va)
            return &fn;
    }
    return nullptr;
}

Core::NativeHook
NativeRegistry::makeHook(IsaKind isa) const
{
    return [this, isa](Core &core) -> Tick {
        const NativeFn *fn = find(core.pc());
        if (!fn)
            panic("PC %#llx in native gate but no function bound",
                  (unsigned long long)core.pc());
        if (fn->isa != isa)
            panic("native function %s executed on the wrong core",
                  fn->name.c_str());
        std::vector<std::uint64_t> args(fn->nargs);
        for (unsigned i = 0; i < fn->nargs; ++i)
            args[i] = core.arg(i);
        NativeContext ctx(core);
        std::uint64_t rv = fn->body(ctx, args);
        core.finishHijackedCall(rv);
        return fn->cost;
    };
}

} // namespace flick
