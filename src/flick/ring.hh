/**
 * @file
 * Descriptor rings (Section IV-C1).
 *
 * Concurrent migrations need more than one in-flight descriptor per
 * direction, so the single kernel-buffer and inbox slots of the serial
 * design become fixed-size rings of 128-byte slots with head/tail
 * indices. A ring pairs two slot arrays that mirror each other across
 * the PCIe link: the sender's staging area (where the descriptor is
 * packaged) and the receiver's mailbox (where the DMA burst lands).
 * Because the DMA engine completes transfers FIFO, the same head/tail
 * indices describe both sides: slot i of the staging array always
 * travels to slot i of the mailbox.
 *
 * The ring only does index bookkeeping; the descriptor bytes themselves
 * live in simulated DRAM at the slot addresses and travel through the
 * simulated DMA engines.
 */

#ifndef FLICK_FLICK_RING_HH
#define FLICK_FLICK_RING_HH

#include "flick/descriptor.hh"
#include "sim/logging.hh"

namespace flick
{

/**
 * Index bookkeeping for one direction of descriptor traffic between the
 * host and one NxP device.
 */
class DescriptorRing
{
  public:
    /** Slot stride: one wire descriptor, padded to its wire size. */
    static constexpr std::uint64_t slotBytes =
        MigrationDescriptor::wireBytes;

    DescriptorRing() = default;

    /**
     * @param staging_base Physical base of the sender-side slot array.
     * @param mailbox_base Physical base of the receiver-side slot array
     *        (in the receiver's address space).
     * @param slots Number of slots (in-flight descriptor bound).
     */
    DescriptorRing(Addr staging_base, Addr mailbox_base, unsigned slots)
        : _staging(staging_base), _mailbox(mailbox_base), _slots(slots)
    {
        if (slots == 0)
            panic("descriptor ring with zero slots");
    }

    unsigned slots() const { return _slots; }
    unsigned inUse() const { return _count; }
    bool full() const { return _count == _slots; }
    bool empty() const { return _count == 0; }

    /** Claim the tail slot for a new descriptor; ring must not be full. */
    unsigned
    push()
    {
        if (full())
            panic("descriptor ring overflow (%u slots)", _slots);
        unsigned slot = _tail;
        _tail = (_tail + 1) % _slots;
        ++_count;
        return slot;
    }

    /** Oldest in-flight slot (what the receiver consumes next). */
    unsigned
    front() const
    {
        if (empty())
            panic("descriptor ring underflow");
        return _head;
    }

    /** Release the head slot after the receiver consumed it. */
    void
    pop()
    {
        if (empty())
            panic("descriptor ring underflow");
        _head = (_head + 1) % _slots;
        --_count;
    }

    /**
     * Drop every in-flight slot (device quarantine: nothing staged will
     * ever be consumed, retransmitted or completed). The ring is empty
     * afterwards and can be reused.
     */
    void
    drain()
    {
        _head = _tail;
        _count = 0;
    }

    /** Sender-side (staging) physical address of @p slot. */
    Addr stagingPa(unsigned slot) const { return _staging + slot * slotBytes; }

    /** Receiver-side (mailbox) physical address of @p slot. */
    Addr mailboxPa(unsigned slot) const { return _mailbox + slot * slotBytes; }

  private:
    Addr _staging = 0;
    Addr _mailbox = 0;
    unsigned _slots = 1;
    unsigned _head = 0;
    unsigned _tail = 0;
    unsigned _count = 0;
};

} // namespace flick

#endif // FLICK_FLICK_RING_HH
