/**
 * @file
 * CallFuture: the handle for an in-flight cross-ISA call.
 *
 * FlickSystem::submit() starts a call and returns immediately; the
 * returned CallFuture resolves when the call's root function returns.
 * wait() drives the simulated machine (the shared event queue) forward,
 * so while one thread's call is blocked mid-migration every other
 * in-flight call keeps making progress — that is where the overlap
 * between concurrent migrating threads comes from.
 *
 * A call no longer either succeeds or kills the process: it completes
 * with an outcome. status() distinguishes a normal return (ok) from a
 * deadline expiry, a lost (quarantined) device and a user cancel();
 * value() is only meaningful when the status is ok.
 *
 * Lifecycle edges are well-defined:
 *  - Destroying an unwaited (or never-waited) future is a no-op; the
 *    call keeps running and its completion state simply has no observer.
 *  - wait() on an already-completed future returns immediately with the
 *    recorded value, so double wait() is safe.
 *  - A moved-from future is invalid (valid() is false); wait(), value()
 *    and cancel() on it panic/no-op exactly like on a default-
 *    constructed future.
 */

#ifndef FLICK_FLICK_CALL_FUTURE_HH
#define FLICK_FLICK_CALL_FUTURE_HH

#include <cstdint>
#include <memory>

#include "sim/ticks.hh"

namespace flick
{

class MigrationEngine;

/** Outcome of a submitted call. */
enum class CallStatus
{
    pending,          //!< Still in flight.
    ok,               //!< Root function returned normally.
    deadlineExceeded, //!< SystemConfig::callDeadline expired first.
    deviceLost,       //!< An NxP it depended on was quarantined.
    cancelled,        //!< CallFuture::cancel() tore it down.
    shedLoad,         //!< Admission control refused it at submit time.
};

/** Printable status name. */
const char *callStatusName(CallStatus status);

/**
 * Why a call with status shedLoad was refused (DESIGN.md §14). The
 * legacy per-device admission cap reports queueFull (the fabric's
 * rings are the queue that is full); the QoS front door distinguishes
 * all three.
 */
enum class ShedReason
{
    none,               //!< Not shed (status != shedLoad).
    queueFull,          //!< Fabric at cap, or tenant queue full.
    deadlineInfeasible, //!< Estimated completion misses the deadline.
    tenantOverBudget,   //!< Tenant at its in-flight budget, no queueing.
};

/** Shared completion state between the engine and the future. */
struct CallFutureState
{
    bool done = false;
    CallStatus status = CallStatus::pending;
    std::uint64_t value = 0;
    int pid = 0;
    ShedReason shedReason = ShedReason::none;
};

/**
 * Result handle for one submitted call.
 *
 * Copyable; all copies observe the same completion. A default-
 * constructed (or moved-from) future is invalid until assigned from
 * submit().
 */
class CallFuture
{
  public:
    CallFuture() = default;

    bool valid() const { return _state != nullptr; }

    /** True once the call completed (any status, not only ok). */
    bool done() const { return _state && _state->done; }

    /** The call's outcome; pending while in flight or invalid. */
    CallStatus
    status() const
    {
        return _state ? _state->status : CallStatus::pending;
    }

    /** PID of the thread executing the call. */
    int pid() const { return _state ? _state->pid : 0; }

    /** Why the call was shed; none unless status() is shedLoad. */
    ShedReason
    shedReason() const
    {
        return _state ? _state->shedReason : ShedReason::none;
    }

    /**
     * Drive the simulation until this call completes; returns the
     * call's return value (0 when the status is not ok — check
     * status()). Other in-flight calls progress concurrently. Safe to
     * call again on a completed future: it returns immediately.
     */
    std::uint64_t wait();

    /**
     * Like wait(), but gives up once at least @p ticks of simulated
     * time have passed (or the event queue runs dry). Returns done().
     * The call stays in flight after a false return; wait()/waitFor()
     * can be called again.
     */
    bool waitFor(Tick ticks);

    /**
     * Tear the in-flight call down: its future completes with status
     * cancelled and the engine unwinds the call's protocol state (any
     * descriptor still in flight is dropped on arrival). Returns true
     * if this call cancelled it, false if the call had already
     * completed (or the future is invalid). Cancelling never rescues
     * the call via host fallback — the caller asked for it to stop.
     */
    bool cancel();

    /** The return value; the call must be done(). */
    std::uint64_t value() const;

  private:
    friend class MigrationEngine;

    CallFuture(std::shared_ptr<CallFutureState> state,
               MigrationEngine *engine)
        : _state(std::move(state)), _engine(engine)
    {}

    std::shared_ptr<CallFutureState> _state;
    MigrationEngine *_engine = nullptr;
};

} // namespace flick

#endif // FLICK_FLICK_CALL_FUTURE_HH
