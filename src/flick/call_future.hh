/**
 * @file
 * CallFuture: the handle for an in-flight cross-ISA call.
 *
 * FlickSystem::submit() starts a call and returns immediately; the
 * returned CallFuture resolves when the call's root function returns.
 * wait() drives the simulated machine (the shared event queue) forward,
 * so while one thread's call is blocked mid-migration every other
 * in-flight call keeps making progress — that is where the overlap
 * between concurrent migrating threads comes from.
 */

#ifndef FLICK_FLICK_CALL_FUTURE_HH
#define FLICK_FLICK_CALL_FUTURE_HH

#include <cstdint>
#include <memory>

namespace flick
{

class MigrationEngine;

/** Shared completion state between the engine and the future. */
struct CallFutureState
{
    bool done = false;
    std::uint64_t value = 0;
    int pid = 0;
};

/**
 * Result handle for one submitted call.
 *
 * Copyable; all copies observe the same completion. A default-
 * constructed future is invalid until assigned from submit().
 */
class CallFuture
{
  public:
    CallFuture() = default;

    bool valid() const { return _state != nullptr; }

    /** True once the call's root function has returned. */
    bool done() const { return _state && _state->done; }

    /** PID of the thread executing the call. */
    int pid() const { return _state ? _state->pid : 0; }

    /**
     * Drive the simulation until this call completes; returns the
     * call's return value. Other in-flight calls progress concurrently.
     */
    std::uint64_t wait();

    /** The return value; the call must be done(). */
    std::uint64_t value() const;

  private:
    friend class MigrationEngine;

    CallFuture(std::shared_ptr<CallFutureState> state,
               MigrationEngine *engine)
        : _state(std::move(state)), _engine(engine)
    {}

    std::shared_ptr<CallFutureState> _state;
    MigrationEngine *_engine = nullptr;
};

} // namespace flick

#endif // FLICK_FLICK_CALL_FUTURE_HH
