#include "flick/runtime.hh"

#include "loader/loader.hh"
#include "mem/residency.hh"
#include "policy/policy.hh"
#include "sim/chaos.hh"
#include "spec/speculation.hh"

namespace flick
{

const char *
protocolStepName(ProtocolStep step)
{
    switch (step) {
      case ProtocolStep::hostNxFault: return "hostNxFault";
      case ProtocolStep::nxpStackAlloc: return "nxpStackAlloc";
      case ProtocolStep::hostSendCall: return "hostSendCall";
      case ProtocolStep::dmaToNxp: return "dmaToNxp";
      case ProtocolStep::nxpPickup: return "nxpPickup";
      case ProtocolStep::nxpCallStart: return "nxpCallStart";
      case ProtocolStep::nxpFault: return "nxpFault";
      case ProtocolStep::nxpSendCall: return "nxpSendCall";
      case ProtocolStep::hostWake: return "hostWake";
      case ProtocolStep::hostCallStart: return "hostCallStart";
      case ProtocolStep::hostSendReturn: return "hostSendReturn";
      case ProtocolStep::nxpResume: return "nxpResume";
      case ProtocolStep::nxpSendReturn: return "nxpSendReturn";
      case ProtocolStep::hostReturn: return "hostReturn";
      case ProtocolStep::hostForward: return "hostForward";
      case ProtocolStep::hostFallback: return "hostFallback";
      case ProtocolStep::hostSteered: return "hostSteered";
    }
    return "?";
}

// --- Placement policy plumbing (DESIGN.md §11) --------------------------

/**
 * The engine-state window a PlacementPolicy looks through. Everything
 * is a cheap read of existing engine state; building one is free and
 * side-effect free, so consulting a policy cannot perturb the event
 * stream.
 */
struct EnginePlacementView final : PlacementView
{
    explicit EnginePlacementView(const MigrationEngine &engine)
        : e(engine)
    {
    }

    unsigned
    deviceCount() const override
    {
        return static_cast<unsigned>(e._nxp.size());
    }

    DeviceLoad
    load(unsigned device) const override
    {
        const auto &s = e._nxp[device];
        DeviceLoad l;
        l.depth = s.h2d.inUse() +
                  static_cast<unsigned>(s.h2dDeferred.size()) +
                  (s.busy ? 1 : 0);
        l.busy = s.busy;
        l.quarantined = s.health == DeviceHealth::quarantined;
        l.saturated = e._admissionCap && l.depth >= e._admissionCap;
        return l;
    }

    Tick crossingEstimate() const override
    {
        return e.crossingCostEstimate();
    }

    Tick
    steerOverhead() const override
    {
        return e._timing.nxFaultService + e._timing.faultTrapExit +
               e.hostCycles(e._timing.hostHandlerCycles);
    }

    unsigned
    hostSpeedup() const override
    {
        if (!e._timing.nxpFreqHz)
            return 1;
        auto r = e._timing.hostFreqHz / e._timing.nxpFreqHz;
        return r ? static_cast<unsigned>(r) : 1;
    }

    PageResidency
    pageResidency(Addr cr3, VAddr va) const override
    {
        PageResidency pr;
        if (!e._residency)
            return pr;
        // Untimed debug walk (same shape as the NX-fault tag read):
        // residency queries are modeled as kernel metadata lookups and
        // must not perturb timing or stats.
        Addr table = cr3;
        std::uint64_t raw = 0;
        int level = 3;
        bool leaf = false;
        for (; level >= 0; --level) {
            e._mem.readInt(Requester::debug,
                           table + 8ull * tableIndex(va, level), 8,
                           raw);
            if (!(raw & pte::present))
                return pr;
            leaf = (level == 0) || (raw & pte::pageSize);
            if (leaf)
                break;
            table = pte::entryAddr(raw);
        }
        if (!leaf)
            return pr;
        std::uint64_t granule = 4096ull << (9 * level);
        Addr pa = (pte::entryAddr(raw) & ~(granule - 1)) +
                  (va & (granule - 1));
        const PlatformConfig &p = e._mem.platform();
        unsigned dev;
        if (p.inHostDram(pa))
            pr.holder = -1;
        else if (p.inBarDram(pa, dev))
            pr.holder = static_cast<int>(dev);
        else
            return pr; // control window / unmapped: no residency.
        pr.mapped = true;
        std::uint64_t key =
            e._mem.canonicalPageKey(Requester::debug, pa);
        const std::vector<std::uint64_t> *row = e._residency->counts(key);
        if (!row)
            return pr;
        pr.hostAccesses = (*row)[ResidencyTracker::hostAccessor];
        pr.deviceAccesses.assign(row->begin() + 1, row->end());
        return pr;
    }

    const MigrationEngine &e;
};

const char *
callStatusName(CallStatus status)
{
    switch (status) {
      case CallStatus::pending: return "pending";
      case CallStatus::ok: return "ok";
      case CallStatus::deadlineExceeded: return "deadlineExceeded";
      case CallStatus::deviceLost: return "deviceLost";
      case CallStatus::cancelled: return "cancelled";
      case CallStatus::shedLoad: return "shedLoad";
    }
    return "?";
}

const char *
deviceHealthName(DeviceHealth health)
{
    switch (health) {
      case DeviceHealth::healthy: return "healthy";
      case DeviceHealth::suspect: return "suspect";
      case DeviceHealth::quarantined: return "quarantined";
    }
    return "?";
}

// --- CallFuture ---------------------------------------------------------

std::uint64_t
CallFuture::wait()
{
    if (!_state || !_engine)
        panic("wait() on an invalid CallFuture");
    while (!_state->done) {
        if (!_engine->pump())
            panic("migration engine deadlock: waiting on an empty "
                  "event queue");
    }
    return _state->value;
}

bool
CallFuture::waitFor(Tick ticks)
{
    if (!_state || !_engine)
        panic("waitFor() on an invalid CallFuture");
    Tick until = _engine->now() + ticks;
    while (!_state->done && _engine->now() < until) {
        if (!_engine->pump())
            break; // queue ran dry; the call is stuck, not done
    }
    return _state->done;
}

bool
CallFuture::cancel()
{
    if (!_state || !_engine || _state->done)
        return false;
    return _engine->cancelCall(_state->pid);
}

std::uint64_t
CallFuture::value() const
{
    if (!_state || !_state->done)
        panic("value() on a CallFuture that is not done");
    return _state->value;
}

// --- Construction and registration --------------------------------------

MigrationEngine::MigrationEngine(EventQueue &events, MemSystem &mem,
                                 const TimingConfig &timing,
                                 Kernel &kernel, IrqController &irq,
                                 Core &host_core)
    : _events(events), _mem(mem), _timing(timing), _kernel(kernel),
      _irq(irq), _hostCore(host_core), _stats("flick")
{
}

void
MigrationEngine::addNxpDevice(Core &core, NxpPlatform &platform,
                              DmaEngine &dma, RegionHeap &stack_heap,
                              Addr host_staging_pa, Addr host_inbox_pa,
                              unsigned irq_vector, unsigned ring_slots,
                              std::uint64_t freq_hz)
{
    if (ring_slots == 0 || ring_slots > NxpPlatform::maxRingSlots)
        fatal("descriptor rings must have 1..%u slots",
              NxpPlatform::maxRingSlots);
    NxpSide s;
    s.core = &core;
    s.platform = &platform;
    s.dma = &dma;
    s.stackHeap = &stack_heap;
    s.hostStagingPa = host_staging_pa;
    s.hostInboxPa = host_inbox_pa;
    s.irqVector = irq_vector;
    s.clock = ClockDomain(freq_hz ? freq_hz : _timing.nxpFreqHz);
    s.h2d = DescriptorRing(host_staging_pa, platform.inboxLocalPa(),
                           ring_slots);
    s.d2h = DescriptorRing(platform.outboxLocalPa(), host_inbox_pa,
                           ring_slots);
    _nxp.push_back(std::move(s));
    unsigned device = static_cast<unsigned>(_nxp.size() - 1);
    _irq.connect(irq_vector, [this, device] { hostIrq(device); });
}

MigrationEngine::NxpSide &
MigrationEngine::side(unsigned device)
{
    if (device >= _nxp.size())
        panic("no NxP device %u", device);
    return _nxp[device];
}

MigrationEngine::TaskExec &
MigrationEngine::exec(int pid)
{
    auto it = _exec.find(pid);
    if (it == _exec.end())
        panic("no in-flight call for task %d", pid);
    return it->second;
}

MigrationEngine::TaskExec *
MigrationEngine::live(int pid, std::uint64_t id)
{
    auto it = _exec.find(pid);
    if (it == _exec.end() || it->second.id != id)
        return nullptr;
    return &it->second;
}

Tick
MigrationEngine::hostCycles(std::uint64_t n) const
{
    return _timing.hostClock().cycles(n);
}

Tick
MigrationEngine::nxpCycles(unsigned device, std::uint64_t n) const
{
    // Each device has its own clock domain (addNxpDevice's freq_hz);
    // homogeneous fabrics inherit the TimingConfig-wide nxpFreqHz and
    // every domain is identical.
    if (device >= _nxp.size())
        panic("no NxP device %u", device);
    return _nxp[device].clock.cycles(n);
}

// --- Descriptor-ring memory helpers -------------------------------------

void
MigrationEngine::writeHostStaging(const MigrationDescriptor &d,
                                  unsigned device, unsigned slot)
{
    auto w = d.toWire();
    _mem.hostDram().write(side(device).h2d.stagingPa(slot), w.data(),
                          w.size());
}

MigrationDescriptor::Wire
MigrationEngine::readNxpInboxWire(unsigned device, unsigned slot)
{
    MigrationDescriptor::Wire w{};
    Addr off = side(device).h2d.mailboxPa(slot) -
               _mem.platform().nxpDramLocalBase;
    _mem.nxpDram(device).read(off, w.data(), w.size());
    return w;
}

void
MigrationEngine::writeNxpOutbox(const MigrationDescriptor &d,
                                unsigned device, unsigned slot)
{
    auto w = d.toWire();
    Addr off = side(device).d2h.stagingPa(slot) -
               _mem.platform().nxpDramLocalBase;
    _mem.nxpDram(device).write(off, w.data(), w.size());
}

MigrationDescriptor::Wire
MigrationEngine::readHostInboxWire(unsigned device, unsigned slot)
{
    MigrationDescriptor::Wire w{};
    _mem.hostDram().read(side(device).d2h.mailboxPa(slot), w.data(),
                         w.size());
    return w;
}

std::uint64_t
MigrationEngine::currentNxpSp(const Task &task, unsigned device) const
{
    // The innermost saved context on this device tells where the
    // thread's NxP stack currently stands (reentrant nested calls).
    for (auto it = task.nxpSavedCtx.rbegin(); it != task.nxpSavedCtx.rend();
         ++it) {
        if (it->device == device)
            return it->sp & ~std::uint64_t(15);
    }
    return task.nxpStackTop[device] & ~std::uint64_t(15);
}

void
MigrationEngine::ensureNxpStack(Task &task, unsigned device, Cont then)
{
    if (task.nxpStackTop[device] != 0) {
        then();
        return;
    }
    VAddr stack_base = side(device).stackHeap->allocate(_nxpStackBytes, 16);
    task.nxpStackTop[device] = stack_base + _nxpStackBytes;
    task.nxpStackBytes = _nxpStackBytes;
    int pid = task.pid;
    VAddr top = task.nxpStackTop[device];
    after(_timing.nxpStackAllocate, [this, pid, top, then] {
        _stats.inc("nxp_stacks_allocated");
        journal(ProtocolStep::nxpStackAlloc, pid, top);
        then();
    });
}

void
MigrationEngine::releaseNxpStacks(Task &task)
{
    if (!task.nxpSavedCtx.empty())
        panic("releasing NxP stacks of task %d mid-migration", task.pid);
    for (unsigned d = 0; d < _nxp.size(); ++d) {
        if (task.nxpStackTop[d] == 0)
            continue;
        side(d).stackHeap->free(task.nxpStackTop[d] - task.nxpStackBytes);
        task.nxpStackTop[d] = 0;
        _stats.inc("nxp_stacks_freed");
    }
}

// --- Submission ----------------------------------------------------------

CallFuture
MigrationEngine::submit(Task &task, VAddr entry,
                        const std::vector<std::uint64_t> &args,
                        VAddr stack_top, const SubmitOptions &opts)
{
    if (task.state != TaskState::created &&
        task.state != TaskState::running) {
        panic("submit on task %d in state %d", task.pid,
              static_cast<int>(task.state));
    }
    if (_exec.count(task.pid))
        panic("task %d already has a call in flight", task.pid);
    if (_qos.enabled && _qosQueuedPid.count(task.pid))
        panic("task %d already has a call queued", task.pid);

    unsigned tenant = 0;
    if (_qos.enabled) {
        tenant = registerTenant(task.cr3);
        tenantStat("qos.submitted", tenant);
    }

    if (_admissionCap && fabricSaturated()) {
        // Admission control: every live device is at its in-flight cap,
        // so the call is refused at the front door. The future completes
        // right here — nothing is queued, no event is scheduled, and the
        // caller can retry or degrade immediately.
        _stats.inc("admission.shed");
        if (_qos.enabled) {
            tenantStat("qos.shed", tenant);
            tenantStat("qos.shed.queue_full", tenant);
            recordArrival(tenant, task.pid, QosArrival::Outcome::shed,
                          ShedReason::queueFull, 0);
        }
        return shedFuture(task, ShedReason::queueFull);
    }

    Tick abs_deadline = 0;
    if (opts.deadline)
        abs_deadline = _events.now() + opts.deadline;
    else if (_callDeadline)
        abs_deadline = _events.now() + _callDeadline;

    if (!_qos.enabled) {
        return admitCall(task, entry, args, stack_top, abs_deadline,
                         opts.placementHint, nullptr);
    }

    // --- The QoS front door (DESIGN.md §14) ---------------------------

    // Deadline-aware admission: estimate this call's completion time
    // (shared cost model + the tenant's own backlog) and shed it now,
    // before it occupies a ring slot, if the deadline cannot be met.
    Tick estimate = admissionEstimate(task.cr3, entry, tenant);
    if (abs_deadline && _qos.deadlineAdmission &&
        _events.now() + estimate > abs_deadline) {
        tenantStat("qos.shed", tenant);
        tenantStat("qos.shed.deadline_infeasible", tenant);
        recordArrival(tenant, task.pid, QosArrival::Outcome::shed,
                      ShedReason::deadlineInfeasible, estimate);
        return shedFuture(task, ShedReason::deadlineInfeasible);
    }

    if (_tenants.inFlight(tenant) >= effectiveTenantBudget()) {
        if (_qos.tenantQueueCap == 0) {
            // Queueing disabled: a strict budget, shed on the spot.
            tenantStat("qos.shed", tenant);
            tenantStat("qos.shed.tenant_over_budget", tenant);
            recordArrival(tenant, task.pid, QosArrival::Outcome::shed,
                          ShedReason::tenantOverBudget, estimate);
            return shedFuture(task, ShedReason::tenantOverBudget);
        }
        if (_tenants.queued(tenant) >= _qos.tenantQueueCap) {
            tenantStat("qos.shed", tenant);
            tenantStat("qos.shed.queue_full", tenant);
            recordArrival(tenant, task.pid, QosArrival::Outcome::shed,
                          ShedReason::queueFull, estimate);
            return shedFuture(task, ShedReason::queueFull);
        }
        // Over budget but the queue has room: park the call. Its future
        // is pending; weighted fair dequeue admits it when the tenant's
        // budget frees up (pumpQosQueues).
        auto state = std::make_shared<CallFutureState>();
        state->pid = task.pid;
        QosPending p;
        p.task = &task;
        p.entry = entry;
        p.args = args;
        p.stackTop = stack_top;
        p.placementHint = opts.placementHint;
        p.absDeadline = abs_deadline;
        p.enqueued = _events.now();
        p.future = state;
        _qosQueues[tenant].push_back(std::move(p));
        _qosQueuedPid[task.pid] = tenant;
        _tenants.onEnqueue(tenant);
        tenantStat("qos.queued", tenant);
        recordArrival(tenant, task.pid, QosArrival::Outcome::queued,
                      ShedReason::none, estimate);
        return CallFuture(std::move(state), this);
    }

    tenantStat("qos.admitted", tenant);
    recordArrival(tenant, task.pid, QosArrival::Outcome::admitted,
                  ShedReason::none, estimate);
    return admitCall(task, entry, args, stack_top, abs_deadline,
                     opts.placementHint, nullptr);
}

CallFuture
MigrationEngine::shedFuture(Task &task, ShedReason reason)
{
    // A shed call completes without allocating a call frame, touching a
    // ring staging slot or scheduling an event: the future is the only
    // thing created, and the engine's clocks, rings and counters (bar
    // the shed counters charged by the caller) are untouched.
    auto shed = std::make_shared<CallFutureState>();
    shed->pid = task.pid;
    shed->value = 0;
    shed->status = CallStatus::shedLoad;
    shed->shedReason = reason;
    shed->done = true;
    return CallFuture(std::move(shed), this);
}

CallFuture
MigrationEngine::admitCall(Task &task, VAddr entry,
                           const std::vector<std::uint64_t> &args,
                           VAddr stack_top, Tick abs_deadline,
                           int placement_hint,
                           std::shared_ptr<CallFutureState> state)
{
    if (!state) {
        state = std::make_shared<CallFutureState>();
        state->pid = task.pid;
    }
    TaskExec x;
    x.task = &task;
    x.future = state;
    x.id = ++_nextExecId;
    x.entry = entry;
    x.args = args;
    x.stackTop = stack_top;
    x.placementHint = placement_hint;
    x.deadline = abs_deadline;
    if (_qos.enabled) {
        x.qosAdmitted = true;
        x.tenant = registerTenant(task.cr3);
        x.admitted = _events.now();
        _tenants.onAdmit(x.tenant);
    }
    bool deadlined = x.deadline != 0;
    _exec.emplace(task.pid, std::move(x));
    _stats.inc("calls_submitted");
    traceGauge(TraceGauge::inFlightCalls, 0, _exec.size());
    // The watchdog only exists when something can actually go wrong
    // (endpoint fault injection or a configured deadline); otherwise the
    // fault-free event stream stays untouched.
    if (deadlined || (_chaos && _chaos->endpointFaultsEnabled()))
        armHeartbeat();
    _kernel.enqueueRunnable(task);
    kickHost();
    return CallFuture(std::move(state), this);
}

unsigned
MigrationEngine::registerTenant(Addr cr3)
{
    unsigned tenant = _tenants.tenantOf(cr3);
    if (_qosQueues.size() <= tenant)
        _qosQueues.resize(tenant + 1);
    return tenant;
}

unsigned
MigrationEngine::aliveDeviceCount() const
{
    unsigned n = 0;
    for (const NxpSide &s : _nxp) {
        if (s.health != DeviceHealth::quarantined)
            ++n;
    }
    return n;
}

unsigned
MigrationEngine::effectiveTenantBudget() const
{
    unsigned budget = _qos.tenantInFlight ? _qos.tenantInFlight : 1;
    unsigned total = static_cast<unsigned>(_nxp.size());
    if (!total)
        return budget;
    // Quarantined devices propagate their capacity loss into the
    // admission budget: the per-tenant budget shrinks with the alive
    // fraction of the fabric, but never below one so a degraded fabric
    // still drains.
    unsigned eff = budget * aliveDeviceCount() / total;
    return eff ? eff : 1;
}

Tick
MigrationEngine::admissionEstimate(Addr cr3, VAddr entry,
                                   unsigned tenant) const
{
    // Per-call service estimate, most-informed source first: the
    // placement policy's learned EWMAs (the same model that steers
    // dispatch), the QoS layer's own end-to-end entry model, then the
    // analytic single-crossing floor for never-seen callees.
    Tick service = _policy ? _policy->estimateCall(cr3, entry) : 0;
    if (!service)
        service = _qosModel.estimate(cr3, entry);
    if (!service)
        service = crossingCostEstimate();
    // Queueing delay: the tenant's own backlog (in-flight + queued
    // calls) serialized over the alive share of the fabric. Another
    // tenant's burst never inflates this estimate — its interference is
    // bounded by that tenant's own budget instead.
    unsigned alive = aliveDeviceCount();
    if (!alive)
        alive = 1;
    std::uint64_t ahead =
        _tenants.inFlight(tenant) + _tenants.queued(tenant);
    return service + service * ahead / alive;
}

int
MigrationEngine::residencyMajorityDevice(
    Task &task, const std::vector<std::uint64_t> &args)
{
    if (!_residency)
        return -1;
    // The same access-weighted page vote ResidencyAwarePlacement casts
    // at fault time (DESIGN.md §15), reduced to the question the hint
    // override needs: does one device hold a strict majority?
    EnginePlacementView view(*this);
    std::uint64_t host_votes = 0;
    std::vector<std::uint64_t> dev_votes(_nxp.size(), 0);
    std::uint64_t seen_pages[8];
    unsigned seen = 0;
    for (std::uint64_t arg : args) {
        if (arg < 4096)
            continue;
        std::uint64_t page = arg & ~std::uint64_t(4095);
        bool dup = false;
        for (unsigned i = 0; i < seen; ++i)
            dup = dup || seen_pages[i] == page;
        if (dup || seen >= 8)
            continue;
        seen_pages[seen++] = page;
        PageResidency pr = view.pageResidency(task.cr3, page);
        if (!pr.mapped)
            continue;
        if (pr.holder < 0) {
            host_votes += 1 + pr.hostAccesses;
        } else if (static_cast<unsigned>(pr.holder) < dev_votes.size()) {
            std::uint64_t touches =
                static_cast<unsigned>(pr.holder) < pr.deviceAccesses.size()
                    ? pr.deviceAccesses[pr.holder]
                    : 0;
            dev_votes[pr.holder] += 1 + touches;
        }
    }
    std::uint64_t total = host_votes;
    int best = -1;
    for (unsigned d = 0; d < dev_votes.size(); ++d) {
        total += dev_votes[d];
        if (!dev_votes[d] ||
            _nxp[d].health == DeviceHealth::quarantined)
            continue;
        if (best < 0 || dev_votes[d] > dev_votes[best])
            best = static_cast<int>(d);
    }
    if (best >= 0 && dev_votes[best] * 2 > total)
        return best;
    return -1;
}

void
MigrationEngine::pumpQosQueues()
{
    if (!_qos.enabled)
        return;
    for (;;) {
        unsigned budget = effectiveTenantBudget();
        int pick = _tenants.pick(
            [budget](unsigned) { return budget; },
            [this](unsigned t) { return _qos.weight(t); },
            _qos.agingDequeues);
        if (pick < 0)
            break;
        if (_tenants.lastPickAged())
            tenantStat("qos.aged_picks", static_cast<unsigned>(pick));
        // Respect the legacy fabric cap too: pulling a queued call into
        // a saturated fabric would only shed it deeper in.
        if (_admissionCap && fabricSaturated())
            break;
        auto tenant = static_cast<unsigned>(pick);
        QosPending p = std::move(_qosQueues[tenant].front());
        _qosQueues[tenant].pop_front();
        _qosQueuedPid.erase(p.task->pid);
        _tenants.onDequeue(tenant);
        // Deadline feasibility again, now that queueing burned part of
        // the call's deadline budget.
        Tick estimate = admissionEstimate(p.task->cr3, p.entry, tenant);
        if (p.absDeadline && _qos.deadlineAdmission &&
            _events.now() + estimate > p.absDeadline) {
            tenantStat("qos.shed", tenant);
            tenantStat("qos.shed.deadline_infeasible", tenant);
            recordArrival(tenant, p.task->pid,
                          QosArrival::Outcome::shedAtDequeue,
                          ShedReason::deadlineInfeasible, estimate);
            p.future->value = 0;
            p.future->status = CallStatus::shedLoad;
            p.future->shedReason = ShedReason::deadlineInfeasible;
            p.future->done = true;
            continue;
        }
        _tenants.charge(tenant);
        tenantStat("qos.dequeued", tenant);
        recordArrival(tenant, p.task->pid, QosArrival::Outcome::dequeued,
                      ShedReason::none, estimate);
        // A submit-time placement hint can go stale while the call sits
        // in the queue (hot-page migration moved its data): re-vote the
        // majority holder of the argument pages at dequeue time and
        // re-point the hint when the data clearly lives elsewhere now.
        if (_residency && p.placementHint >= 0) {
            int holder = residencyMajorityDevice(*p.task, p.args);
            if (holder >= 0 && holder != p.placementHint) {
                protoStat("qos.hint_revotes",
                          static_cast<unsigned>(holder));
                p.placementHint = holder;
            }
        }
        admitCall(*p.task, p.entry, p.args, p.stackTop, p.absDeadline,
                  p.placementHint, std::move(p.future));
    }
}

void
MigrationEngine::cancelQueuedCall(int pid, unsigned tenant)
{
    auto &queue = _qosQueues[tenant];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->task->pid != pid)
            continue;
        it->future->value = 0;
        it->future->status = CallStatus::cancelled;
        it->future->done = true;
        _qosQueuedPid.erase(pid);
        _tenants.onDequeue(tenant);
        _stats.inc("calls_failed");
        _stats.inc("cancellations");
        tenantStat("qos.cancelled_queued", tenant);
        recordArrival(tenant, pid, QosArrival::Outcome::cancelledQueued,
                      ShedReason::none, 0);
        queue.erase(it);
        return;
    }
    panic("queued call of pid %d missing from tenant %u's queue", pid,
          tenant);
}

bool
MigrationEngine::fabricSaturated() const
{
    // Shed only when at least one device is alive and all alive devices
    // are at the cap; a host-only system never sheds (nothing to cap)
    // and an all-quarantined fabric fails calls through the existing
    // deviceLost/failover machinery, not admission.
    bool any = false;
    for (const NxpSide &s : _nxp) {
        if (s.health == DeviceHealth::quarantined)
            continue;
        any = true;
        unsigned depth = s.h2d.inUse() +
                         static_cast<unsigned>(s.h2dDeferred.size()) +
                         (s.busy ? 1 : 0);
        if (depth < _admissionCap)
            return false;
    }
    return any;
}

std::uint64_t
MigrationEngine::runHostFunction(Task &task, VAddr entry,
                                 const std::vector<std::uint64_t> &args,
                                 VAddr stack_top)
{
    return submit(task, entry, args, stack_top).wait();
}

// --- Host-core scheduling ------------------------------------------------

void
MigrationEngine::kickHost()
{
    if (_hostBusy || _hostKickScheduled || _kernel.runQueueDepth() == 0)
        return;
    _hostKickScheduled = true;
    after(0, [this] {
        _hostKickScheduled = false;
        dispatchHost();
    });
}

void
MigrationEngine::dispatchHost()
{
    if (_hostBusy)
        return;
    while (Task *task = _kernel.nextRunnable()) {
        auto it = _exec.find(task->pid);
        if (it == _exec.end())
            continue; // the queued call failed or was cancelled
        _hostBusy = true;
        TaskExec &x = it->second;
        if (x.pendingFallback)
            dispatchFallback(x);
        else if (x.pendingWake)
            dispatchWake(x);
        else
            startEntry(x);
        return;
    }
}

void
MigrationEngine::releaseHost()
{
    _hostBusy = false;
    kickHost();
}

void
MigrationEngine::startEntry(TaskExec &x)
{
    Task &task = *x.task;
    task.state = TaskState::running;
    // A fresh call enters through the kernel, which installs the
    // process's page tables on the host core.
    _hostCore.mmu().setCr3(task.cr3);
    _hostLoadedCr3 = task.cr3;
    _hostCore.setStackPointer(x.stackTop & ~std::uint64_t(15));
    _hostCore.setupCall(x.entry, x.args);
    tracePoint(TracePoint::callEntry, task.pid, x.id, 0, x.entry);
    runHostSegment(x);
}

void
MigrationEngine::dispatchWake(TaskExec &x)
{
    int pid = x.task->pid;
    std::uint64_t id = x.id;
    // Scheduler latency until the thread runs again, then the ioctl
    // returns into the user-space migration handler.
    after(_timing.wakeupToRun, [this, pid, id] {
        TaskExec *w = live(pid, id);
        if (!w) {
            releaseHost();
            return;
        }
        Task &task = *w->task;
        if (_hostLoadedCr3 != task.cr3) {
            _hostCore.mmu().setCr3(task.cr3);
            _hostLoadedCr3 = task.cr3;
        }
        _hostCore.restoreContext(_kernel.resume(task));
        after(_timing.ioctlExit, [this, pid, id] {
            TaskExec *v = live(pid, id);
            if (!v) {
                releaseHost();
                return;
            }
            MigrationDescriptor d = v->wakeDesc;
            v->pendingWake = false;
            handleHostDescriptor(*v, d);
        });
    });
}

void
MigrationEngine::dispatchFallback(TaskExec &x)
{
    int pid = x.task->pid;
    std::uint64_t id = x.id;
    // The kernel failed the migration and woke the thread; it resumes
    // exactly like a migration return (scheduler latency, then the
    // driver hands control back to user space), but the driver reports
    // the failure and the runtime re-dispatches to the host twin.
    after(_timing.wakeupToRun, [this, pid, id] {
        TaskExec *w = live(pid, id);
        if (!w) {
            releaseHost();
            return;
        }
        Task &task = *w->task;
        if (_hostLoadedCr3 != task.cr3) {
            _hostCore.mmu().setCr3(task.cr3);
            _hostLoadedCr3 = task.cr3;
        }
        // The saved context's PC still sits on the faulting NX target;
        // the re-dispatch below repoints it at the host twin before any
        // fetch happens.
        _hostCore.restoreContext(_kernel.resume(task));
        after(_timing.ioctlExit +
                  hostCycles(_timing.hostHandlerCycles),
              [this, pid, id] {
            TaskExec *v = live(pid, id);
            if (!v) {
                releaseHost();
                return;
            }
            v->pendingFallback = false;
            CallFrame &top = v->frames.back();
            VAddr twin = fallbackVa(v->task->cr3, top.target);
            if (!twin) {
                panic("host fallback dispatched for task %d without a "
                      "registered twin of %#llx",
                      pid, (unsigned long long)top.target);
            }
            std::vector<std::uint64_t> args(top.args.begin(),
                                            top.args.begin() + top.nargs);
            _hostCore.setupCall(twin, args);
            journal(ProtocolStep::hostFallback, pid, twin);
            tracePoint(TracePoint::hostCallStart, pid, id, 0, twin);
            runHostSegment(*v);
        });
    });
}

void
MigrationEngine::handleHostDescriptor(TaskExec &x, MigrationDescriptor d)
{
    Task &task = *x.task;
    int pid = task.pid;
    if (x.frames.empty())
        panic("host woke task %d with no cross-ISA call in flight", pid);
    CallFrame &top = x.frames.back();

    switch (d.kind) {
      case DescriptorKind::nxpToHostCall: {
        journal(ProtocolStep::hostWake, pid, d.target);
        if (top.callee == hostSide) {
            // (d) An NxP called a host function: run it here.
            std::vector<std::uint64_t> args(d.args.begin(),
                                            d.args.begin() + d.nargs);
            _hostCore.setupCall(d.target, args);
            journal(ProtocolStep::hostCallStart, pid, d.target);
            tracePoint(TracePoint::hostCallStart, pid, x.id, 0, d.target);
            runHostSegment(x);
            return;
        }
        // Device-to-device call: the target belongs to another NxP, so
        // the kernel forwards the descriptor there (Section IV-C3).
        unsigned to = top.callee;
        if (side(to).health == DeviceHealth::quarantined) {
            // The destination is gone. With fallback enabled the kernel
            // runs the host twin right here — the host core is already
            // ours and the calling device just waits for its return
            // descriptor as usual. Without it, the call chain dies.
            protoStat("rejected_submissions", to);
            VAddr twin = _hostFallback ? fallbackVa(task.cr3, d.target) : 0;
            if (!twin) {
                failCall(x, CallStatus::deviceLost);
                releaseHost();
                return;
            }
            protoStat("failovers", to);
            top.callee = hostSide;
            _hostCore.setupCall(twin, d.argVector());
            journal(ProtocolStep::hostFallback, pid, twin);
            tracePoint(TracePoint::hostCallStart, pid, x.id, 0, twin);
            runHostSegment(x);
            return;
        }
        journal(ProtocolStep::hostForward, pid, d.target);
        tracePoint(TracePoint::hostDescBuild, pid, x.id, to, d.target);
        MigrationDescriptor fwd = d;
        std::uint64_t id = x.id;
        ensureNxpStack(task, to, [this, pid, id, fwd, to] {
            after(_timing.ioctlEntry, [this, pid, id, fwd, to] {
                TaskExec *w = live(pid, id);
                if (!w) {
                    releaseHost();
                    return;
                }
                MigrationDescriptor f = fwd;
                f.kind = DescriptorKind::hostToNxpCall;
                f.cr3 = w->task->cr3;
                f.nxpSp = currentNxpSp(*w->task, to);
                hostSendDescriptor(*w, f, to);
            });
        });
        return;
      }

      case DescriptorKind::nxpToHostReturn: {
        journal(ProtocolStep::hostReturn, pid, d.retval);
        if (top.caller == hostSide) {
            // (g) The host->NxP round trip completes here.
            tracePoint(TracePoint::hostResume, pid, x.id);
            CallFrame done = top;
            x.frames.pop_back();
            ++task.migrations;
            _stats.inc("host_nxp_host_roundtrips");
            _stats.inc("host_nxp_host_ticks", _events.now() - done.t0);
            // The measured end-to-end latency is the cost model's input
            // (ProfileGuidedPlacement); a no-feedback policy skips it.
            recordPlacementOutcome(task, done);
            _hostCore.finishHijackedCall(d.retval);
            runHostSegment(x);
            return;
        }
        // A forwarded device-to-device call returned: relay the value
        // back to the device that is waiting for it.
        unsigned from = top.caller;
        std::uint64_t rv = d.retval;
        std::uint64_t id = x.id;
        tracePoint(TracePoint::hostDescBuild, pid, id, from);
        after(_timing.ioctlEntry, [this, pid, id, rv, from] {
            TaskExec *w = live(pid, id);
            if (!w) {
                releaseHost();
                return;
            }
            MigrationDescriptor ret;
            ret.kind = DescriptorKind::hostToNxpReturn;
            ret.pid = static_cast<std::uint32_t>(pid);
            ret.retval = rv;
            ret.nxpSp = currentNxpSp(*w->task, from);
            hostSendDescriptor(*w, ret, from);
        });
        return;
      }

      default:
        panic("host received unexpected descriptor kind %s for task %d",
              descriptorKindName(d.kind), pid);
    }
}

void
MigrationEngine::runHostSegment(TaskExec &x)
{
    int pid = x.task->pid;
    std::uint64_t id = x.id;
    // Functional-first: the slice executes now, its time is charged as
    // a continuation, and the core stays owned until the stop handler.
    RunResult r = _hostCore.run();
    after(r.elapsed, [this, pid, id, r] { handleHostStop(pid, id, r); });
}

void
MigrationEngine::handleHostStop(int pid, std::uint64_t id, RunResult r)
{
    TaskExec *xp = live(pid, id);
    if (!xp) {
        // The call was failed/cancelled while its segment's time was
        // being charged; the segment's owner releases the core.
        releaseHost();
        return;
    }
    TaskExec &x = *xp;
    Task &task = *x.task;

    switch (r.stop) {
      case Fault::trampoline: {
        std::uint64_t rv = _hostCore.retVal();
        if (x.frames.empty()) {
            // The entry function returned: the call is complete.
            completeCall(x, rv);
            return;
        }
        CallFrame &top = x.frames.back();
        if (top.callee != hostSide) {
            panic("host trampoline for task %d inside a device-side "
                  "frame", pid);
        }
        if (top.caller == hostSide) {
            // A host twin of a host-initiated call finished — either a
            // failover or a policy-steered run: deliver the value like
            // the migration return would have.
            CallFrame done = top;
            x.frames.pop_back();
            _stats.inc(done.steered ? "placement.host_steered_returns"
                                    : "fallback_returns");
            recordPlacementOutcome(task, done);
            _hostCore.finishHijackedCall(rv);
            runHostSegment(x);
            return;
        }
        // (e) A nested host function finished: package the return and
        // ship it back to the calling device.
        unsigned from = top.caller;
        tracePoint(TracePoint::hostDescBuild, pid, id, from, rv);
        after(hostCycles(_timing.hostHandlerCycles) + _timing.ioctlEntry,
              [this, pid, id, rv, from] {
                  TaskExec *w = live(pid, id);
                  if (!w) {
                      releaseHost();
                      return;
                  }
                  MigrationDescriptor ret;
                  ret.kind = DescriptorKind::hostToNxpReturn;
                  ret.pid = static_cast<std::uint32_t>(pid);
                  ret.retval = rv;
                  ret.nxpSp = currentNxpSp(*w->task, from);
                  hostSendDescriptor(*w, ret, from);
              });
        return;
      }

      case Fault::halt:
        if (!x.frames.empty())
            panic("program exit inside a nested cross-ISA call");
        task.state = TaskState::done;
        completeCall(x, _hostCore.retVal());
        return;

      case Fault::nxFetch: {
        FaultAction action =
            _kernel.classifyFetchFault(r.stop, IsaKind::hx64);
        if (action != FaultAction::migrateToNxp)
            panic("host NX fault not classified as migration");

        // The fault handler reads the PTE's software ISA tag (cached in
        // the I-TLB by the faulting fetch) to tell NxP text from plain
        // non-executable data and to pick the target device
        // (Section IV-C3).
        const TlbEntry *pte_entry = _hostCore.mmu().itlb().peek(r.faultVa);
        unsigned isa_tag = pte_entry ? pte::isaTag(pte_entry->flags) : 0;
        if (isa_tag < nxpIsaTag || isa_tag - nxpIsaTag >= _nxp.size()) {
            fatal("guest jumped to NX page %#llx with ISA tag %u: "
                  "not code for any NxP (likely a call through a "
                  "data pointer)",
                  (unsigned long long)r.faultVa, isa_tag);
        }
        // The dispatch decision point (DESIGN.md §11): the fault
        // handler consults the placement policy before staging
        // anything. Without a policy the answer is always "home" and
        // this is a straight pass-through.
        unsigned home = isa_tag - nxpIsaTag;
        Placed p = decidePlacement(task, r.faultVa, home, hostSide);
        if (p.toHost) {
            protoStat("placement.host_steered", home);
            startHostSteeredCall(x, r.faultVa, p.canonical, p.va, home);
            return;
        }
        if (p.device != home)
            protoStat("placement.rebalanced", p.device);
        // Speculative dual execution (DESIGN.md §16): when the policy's
        // host-vs-device margin is thin, arm a race — the descriptor
        // still goes out, but instead of yielding the core the thread's
        // host twin runs speculatively. Leaf top-level calls only: a
        // nested or saved-context call has device state the host twin
        // cannot reproduce.
        if (_spec && x.frames.empty() && task.nxpSavedCtx.empty() &&
            _spec->shouldSpeculate(p.confidencePct)) {
            VAddr twin = fallbackVa(task.cr3, p.canonical);
            if (twin) {
                x.specArmed = true;
                x.specTwinVa = twin;
            }
        }
        startHostToNxpCall(x, p.va, p.device, p.canonical);
        return;
      }

      default:
        // A genuine guest fault (the kernel would deliver SIGSEGV /
        // SIGILL): a user error, not a simulator bug.
        fatal("guest fault on the host core: %s at %#llx "
              "(pc %#llx, pid %d)",
              faultName(r.stop), (unsigned long long)r.faultVa,
              (unsigned long long)_hostCore.pc(), task.pid);
    }
}

void
MigrationEngine::registerDeviceTwin(Addr cr3, VAddr canonical,
                                    unsigned device, VAddr twin_va)
{
    auto &family = _deviceTwins[{cr3, canonical}];
    if (family.size() < _nxp.size())
        family.resize(_nxp.size(), 0);
    if (device < family.size())
        family[device] = twin_va;
    if (twin_va != canonical)
        _twinCanonical[{cr3, twin_va}] = canonical;
}

Tick
MigrationEngine::crossingCostEstimate() const
{
    const TimingConfig &t = _timing;
    std::uint64_t wire = MigrationDescriptor::wireBytes;
    // Host outbound leg: NX fault service, trap exit into the hijacked
    // handler, handler prologue, ioctl entry, descriptor packaging,
    // suspend + context switch, then the h2d descriptor DMA.
    Tick host_out = t.nxFaultService + t.faultTrapExit +
                    hostCycles(t.hostHandlerCycles) + t.ioctlEntry +
                    t.descriptorPack + t.suspendSwitch +
                    t.dmaTransfer(wire);
    // Device: scheduler poll + doorbell read, descriptor parse, context
    // switch in; then (callee runs); then descriptor build, context
    // switch out, doorbell, and the d2h return DMA.
    ClockDomain nxp = t.nxpClock();
    Tick device_legs = nxp.cycles(t.nxpPollCycles) + t.nxpToLocalMmio +
                       nxp.cycles(t.nxpDescriptorCycles) +
                       t.nxpToNxpDram + nxp.cycles(t.nxpCtxSwitchCycles) +
                       nxp.cycles(t.nxpDescriptorCycles) +
                       t.nxpToNxpDram + nxp.cycles(t.nxpCtxSwitchCycles) +
                       t.nxpToLocalMmio + t.dmaTransfer(wire);
    // Host return leg: MSI delivery, IRQ wake, scheduler latency and
    // the ioctl exit back to user space.
    Tick host_back = t.irqDelivery + t.irqWake + t.wakeupToRun +
                     t.ioctlExit;
    return host_out + device_legs + host_back;
}

MigrationEngine::Placed
MigrationEngine::decidePlacement(Task &task, VAddr target, unsigned home,
                                 unsigned caller_device)
{
    Placed p;
    p.device = home;
    p.va = target;
    auto c_it = _twinCanonical.find({task.cr3, target});
    p.canonical = c_it == _twinCanonical.end() ? target : c_it->second;

    // A submit-time placement hint is consumed by the call's first
    // dispatch decision, before (and instead of) the policy.
    int hint = -1;
    auto e_it = _exec.find(task.pid);
    if (e_it != _exec.end() && e_it->second.placementHint >= 0) {
        hint = e_it->second.placementHint;
        e_it->second.placementHint = -1;
    }
    if (hint >= 0 && static_cast<unsigned>(hint) < _nxp.size() &&
        _nxp[hint].health != DeviceHealth::quarantined &&
        !(caller_device != hostSide &&
          static_cast<unsigned>(hint) == caller_device)) {
        VAddr hinted_va = 0;
        if (static_cast<unsigned>(hint) == home) {
            hinted_va = target;
        } else {
            auto h_it = _deviceTwins.find({task.cr3, p.canonical});
            if (h_it != _deviceTwins.end() &&
                static_cast<unsigned>(hint) < h_it->second.size()) {
                hinted_va = h_it->second[hint];
            }
        }
        if (hinted_va) {
            protoStat("placement.hinted", static_cast<unsigned>(hint));
            p.device = static_cast<unsigned>(hint);
            p.va = hinted_va;
            return p;
        }
        // No text for the hinted device: the hint is unusable and
        // dispatch proceeds as if none were given.
    }

    if (!_policy)
        return p;

    PlacementQuery q;
    q.cr3 = task.cr3;
    q.canonical = p.canonical;
    q.home = home;
    q.fromDevice = caller_device != hostSide;
    q.callerDevice = q.fromDevice ? caller_device : 0;
    // The argument registers are live on the faulting core at decision
    // time (the descriptor is built from the same registers just after);
    // residency-aware placement reads the pages they point at.
    const Core &argsrc = q.fromDevice
                             ? *_nxp[caller_device].core
                             : static_cast<const Core &>(_hostCore);
    q.args.reserve(MigrationDescriptor::maxArgs);
    for (unsigned i = 0; i < MigrationDescriptor::maxArgs; ++i)
        q.args.push_back(argsrc.arg(i));

    PlacementCandidates c;
    c.deviceVa.assign(_nxp.size(), 0);
    if (home < c.deviceVa.size())
        c.deviceVa[home] = target;
    auto t_it = _deviceTwins.find({task.cr3, p.canonical});
    if (t_it != _deviceTwins.end()) {
        for (unsigned d = 0;
             d < c.deviceVa.size() && d < t_it->second.size(); ++d) {
            if (t_it->second[d])
                c.deviceVa[d] = t_it->second[d];
        }
    }
    // A device cannot call its own core's text — the fault already
    // proved the target is foreign.
    if (q.fromDevice && caller_device < c.deviceVa.size())
        c.deviceVa[caller_device] = 0;
    c.hostVa = fallbackVa(task.cr3, p.canonical);

    EnginePlacementView view(*this);
    PlacementDecision d = _policy->place(q, c, view);
    p.confidencePct = d.confidencePct;

    // Clamp: a decision for text that does not exist (or a quarantined
    // answer the policy should not have given) degrades to home.
    if (d.toHost && c.hostVa) {
        p.toHost = true;
        p.va = c.hostVa;
        return p;
    }
    if (!d.toHost && d.device < c.deviceVa.size() &&
        c.deviceVa[d.device] != 0) {
        p.device = d.device;
        p.va = c.deviceVa[d.device];
    }
    return p;
}

void
MigrationEngine::startHostSteeredCall(TaskExec &x, VAddr faulted,
                                      VAddr canonical, VAddr twin,
                                      unsigned home)
{
    Task &task = *x.task;
    int pid = task.pid;
    std::uint64_t id = x.id;
    // Same shape (and timing) as a quarantine failover at the fault
    // boundary: the NX fault already fired, so its service cost and the
    // handler prologue are paid; then the handler re-points the call at
    // the host twin instead of packaging a descriptor. The hijacked
    // return address is in place, so the call completes exactly like a
    // migration would have — just without ever leaving the host.
    CallFrame f{hostSide, hostSide, _events.now()};
    f.target = faulted;
    f.canonical = canonical;
    f.steered = true;
    f.nargs = MigrationDescriptor::maxArgs;
    for (unsigned i = 0; i < MigrationDescriptor::maxArgs; ++i)
        f.args[i] = _hostCore.arg(i);
    x.frames.push_back(f);
    journal(ProtocolStep::hostNxFault, pid, faulted);
    tracePoint(TracePoint::hostNxFault, pid, id, home, faulted);
    after(_timing.nxFaultService + _timing.faultTrapExit +
              hostCycles(_timing.hostHandlerCycles),
          [this, pid, id, twin] {
        TaskExec *w = live(pid, id);
        if (!w) {
            releaseHost();
            return;
        }
        CallFrame &top = w->frames.back();
        std::vector<std::uint64_t> args(top.args.begin(),
                                        top.args.begin() + top.nargs);
        _hostCore.setupCall(twin, args);
        journal(ProtocolStep::hostSteered, pid, twin);
        tracePoint(TracePoint::hostCallStart, pid, id, 0, twin);
        runHostSegment(*w);
    });
}

void
MigrationEngine::recordPlacementOutcome(Task &task, const CallFrame &frame)
{
    if (!_policy || !_policy->wantsFeedback() || frame.canonical == 0)
        return;
    // Both host-originated and device-originated (relayed) calls feed
    // the model: a d2h or d2d round trip is as real a sample of its
    // callee's cost as a host-side one, and relayed calls would
    // otherwise never update the EWMAs at all.
    Tick latency = _events.now() - frame.t0;
    if (frame.callee == hostSide) {
        _policy->recordHostCall(task.cr3, frame.canonical, latency);
        _stats.inc("placement.model_updates");
    } else {
        _policy->recordDeviceCall(task.cr3, frame.canonical, frame.callee,
                                  latency);
        protoStat("placement.model_updates", frame.callee);
    }
}

// --- Speculative dual execution (DESIGN.md §16) --------------------------

void
MigrationEngine::setSpeculation(SpeculationManager *spec)
{
    _spec = spec;
    if (_spec)
        _spec->setConflictCallback([this] { specConflictAbort(); });
}

void
MigrationEngine::launchSpeculation(TaskExec &x, unsigned device)
{
    Task &task = *x.task;
    int pid = task.pid;
    x.specArmed = false;
    VAddr twin = x.specTwinVa;
    x.specTwinVa = 0;
    if (_spec->active()) {
        // Another call won the race to the launch point first (cannot
        // happen with one host core, but stay safe if that changes).
        releaseHost();
        return;
    }
    CallFrame &top = x.frames.back();

    std::uint64_t seq = _spec->begin(pid, x.id, device, _events.now());
    protoStat("spec.launched", device);
    tracePoint(TracePoint::specLaunch, pid, x.id, device, twin);

    // The thread is suspended and its context saved; the otherwise-idle
    // host core runs the twin. Everything below happens functionally at
    // this instant — the charged time elapses in the continuation.
    if (_hostLoadedCr3 != task.cr3) {
        _hostCore.mmu().setCr3(task.cr3);
        _hostLoadedCr3 = task.cr3;
    }
    // A native-bridge call performs simulator-side effects that cannot
    // be buffered; the stub dooms the speculation and ends the slice.
    Core::NativeHook native = _hostCore.swapNativeHook([this](Core &c) {
        _spec->markDoomed("native-bridge call");
        c.setPc(runtimeTrampoline);
        return Tick(0);
    });
    _spec->beginSlice();
    // setupCall inside the slice: its return-address push is a
    // speculative store like any other.
    std::vector<std::uint64_t> args(top.args.begin(),
                                    top.args.begin() + top.nargs);
    _hostCore.setupCall(twin, args);
    RunResult r = _hostCore.run(_spec->config().maxInstructions);
    _spec->endSlice();
    _hostCore.swapNativeHook(std::move(native));

    bool committable = r.stop == Fault::trampoline && !_spec->doomed();
    if (!committable && !_spec->doomed()) {
        if (r.stop == Fault::none)
            _spec->markDoomed("instruction budget");
        else
            _spec->markDoomed("twin fault");
    }
    _specRun.seq = seq;
    _specRun.retVal = committable ? _hostCore.retVal() : 0;
    _specRun.elapsed = r.elapsed;
    _specRun.committable = committable;
    after(r.elapsed, [this, pid, seq] { hostSpecFinished(pid, seq); });
}

void
MigrationEngine::hostSpecFinished(int pid, std::uint64_t seq)
{
    if (!_spec->active() || _spec->seq() != seq) {
        // The race was already resolved (NxP win, conflict, call
        // death); whoever squashed it released the host core.
        return;
    }
    unsigned device = _spec->device();
    TaskExec *xp = live(pid, _spec->callId());
    if (!xp || !_specRun.committable || _spec->doomed()) {
        // Doomed slice (fault, cap, native call) or the call died under
        // the race: wasted work, the NxP side carries on alone.
        tracePoint(TracePoint::specSquash, pid, _spec->callId(), device);
        retireSpec(true);
        return;
    }
    commitHostSpec(*xp);
}

void
MigrationEngine::commitHostSpec(TaskExec &x)
{
    Task &task = *x.task;
    int pid = task.pid;
    unsigned device = _spec->device();
    std::uint64_t rv = _specRun.retVal;

    // Cut the losing NxP side before anything becomes guest-visible:
    // bumping the generation token makes every in-flight continuation
    // and descriptor of the old id stale — they release their cores and
    // ring slots exactly like a failed call's stragglers. The loser's
    // stores only land at slice starts, which check live(), so nothing
    // of it can trickle in past this point.
    std::uint64_t old_id = x.id;
    x.id = ++_nextExecId;

    // The straggler d2h return of old_id still carries a genuine
    // device-side latency sample; remember how to credit it.
    CallFrame done = x.frames.back();
    x.frames.pop_back();
    if (_policy && _policy->wantsFeedback() && done.canonical) {
        if (_specHarvest.size() >= 64)
            _specHarvest.erase(_specHarvest.begin());
        _specHarvest[{pid, old_id}] =
            {task.cr3, done.canonical, device, done.t0};
        // The race measured the host side end to end for free.
        _policy->recordHostCall(task.cr3, done.canonical,
                                _events.now() - done.t0);
        _stats.inc("placement.model_updates");
    }

    std::uint64_t replayed = _spec->commit();
    protoStat("spec.committed_host", device);
    _stats.inc("spec.replayed_bytes", replayed);
    tracePoint(TracePoint::specCommit, pid, x.id, device, rv);

    // Wake the thread exactly like a migration return would, but the
    // host core is already ours: resume directly, bypassing the run
    // queue (same latencies as dispatchWake).
    _kernel.wake(task);
    tracePoint(TracePoint::hostWake, pid, x.id, device);
    std::uint64_t id = x.id;
    after(_timing.wakeupToRun, [this, pid, id, rv] {
        TaskExec *w = live(pid, id);
        if (!w) {
            releaseHost();
            return;
        }
        Task &t = *w->task;
        if (_hostLoadedCr3 != t.cr3) {
            _hostCore.mmu().setCr3(t.cr3);
            _hostLoadedCr3 = t.cr3;
        }
        _hostCore.restoreContext(_kernel.resume(t));
        after(_timing.ioctlExit, [this, pid, id, rv] {
            TaskExec *v = live(pid, id);
            if (!v) {
                releaseHost();
                return;
            }
            tracePoint(TracePoint::hostResume, pid, id);
            _hostCore.finishHijackedCall(rv);
            runHostSegment(*v);
        });
    });
}

void
MigrationEngine::retireSpec(bool aborted)
{
    unsigned device = _spec->device();
    Tick waste = _events.now() - _spec->launchTick();
    protoStat("spec.squashed", device);
    if (aborted)
        protoStat("spec.aborted", device);
    _stats.inc("spec.wasted_ticks", waste);
    _stats.inc(strfmt("spec.wasted_ticks_dev%u", device), waste);
    _spec->squash();
    releaseHost();
}

void
MigrationEngine::specConflictAbort()
{
    // Fired from inside someone else's memory access: only flip state
    // and counters here; the freed core is re-dispatched through
    // kickHost's deferred event.
    if (!_spec || !_spec->active())
        return;
    unsigned device = _spec->device();
    protoStat("spec.conflicts", device);
    tracePoint(TracePoint::specConflict, _spec->pid(), _spec->callId(),
               device);
    retireSpec(true);
}

void
MigrationEngine::harvestSpecSample(int pid, std::uint64_t call_id)
{
    auto it = _specHarvest.find({pid, call_id});
    if (it == _specHarvest.end())
        return;
    const SpecHarvest &h = it->second;
    if (_policy && _policy->wantsFeedback()) {
        // Slightly early versus the real wake path (the thread is gone,
        // so there is no wakeupToRun/ioctlExit tail to wait out), but a
        // genuine device-side round-trip sample — the second half of
        // the race's free double-sample.
        _policy->recordDeviceCall(h.cr3, h.canonical, h.device,
                                  _events.now() - h.t0);
        protoStat("placement.model_updates", h.device);
        protoStat("spec.double_samples", h.device);
    }
    _specHarvest.erase(it);
}

void
MigrationEngine::startHostToNxpCall(TaskExec &x, VAddr target,
                                    unsigned device, VAddr canonical)
{
    Task &task = *x.task;
    int pid = task.pid;
    std::uint64_t id = x.id;

    if (side(device).health == DeviceHealth::quarantined) {
        // The kernel's fault handler consults the device health before
        // staging anything: a migration to a quarantined NxP is
        // rejected on the spot. With fallback enabled and a host twin
        // registered, the handler re-points the faulting call at the
        // twin — the hijacked return address is already in place, so
        // the call completes exactly like a migration would have.
        protoStat("rejected_submissions", device);
        // The rejection kills any armed race: the call never crosses.
        x.specArmed = false;
        x.specTwinVa = 0;
        VAddr twin = _hostFallback ? fallbackVa(task.cr3, canonical) : 0;
        if (!twin) {
            failCall(x, CallStatus::deviceLost);
            releaseHost();
            return;
        }
        protoStat("failovers", device);
        CallFrame f{hostSide, hostSide, _events.now()};
        f.target = target;
        f.canonical = canonical;
        f.nargs = MigrationDescriptor::maxArgs;
        for (unsigned i = 0; i < MigrationDescriptor::maxArgs; ++i)
            f.args[i] = _hostCore.arg(i);
        x.frames.push_back(f);
        journal(ProtocolStep::hostNxFault, pid, target);
        tracePoint(TracePoint::hostNxFault, pid, id, device, target);
        after(_timing.nxFaultService + _timing.faultTrapExit +
                  hostCycles(_timing.hostHandlerCycles),
              [this, pid, id, twin] {
            TaskExec *w = live(pid, id);
            if (!w) {
                releaseHost();
                return;
            }
            CallFrame &top = w->frames.back();
            std::vector<std::uint64_t> args(top.args.begin(),
                                            top.args.begin() + top.nargs);
            _hostCore.setupCall(twin, args);
            journal(ProtocolStep::hostFallback, pid, twin);
            tracePoint(TracePoint::hostCallStart, pid, id, 0, twin);
            runHostSegment(*w);
        });
        return;
    }

    _stats.inc("host_to_nxp_calls");
    _stats.inc(strfmt("host_to_nxp_calls_dev%u", device));
    {
        CallFrame f{device, hostSide, _events.now()};
        f.canonical = canonical;
        x.frames.push_back(f);
    }

    // Kernel NX fault service: decode, save the faulting address in the
    // task_struct, hijack the return address to the migration handler,
    // then trap-exit into the hijacked user-space handler.
    task.savedFaultAddr = target;
    journal(ProtocolStep::hostNxFault, pid, target);
    tracePoint(TracePoint::hostNxFault, pid, id, device, target);
    after(_timing.nxFaultService + _timing.faultTrapExit,
          [this, pid, id, target, device] {
              TaskExec *w0 = live(pid, id);
              if (!w0) {
                  releaseHost();
                  return;
              }
              tracePoint(TracePoint::hostDescBuild, pid, id, device);
              // First migration to this device: allocate the thread's
              // NxP stack (Listing 1 lines 3-4).
              ensureNxpStack(*w0->task, device,
                             [this, pid, id, target, device] {
                  // User-space handler gathers its (hijacked)
                  // arguments, then ioctl(): package target, args,
                  // CR3, PID, NxP SP into a descriptor.
                  after(hostCycles(_timing.hostHandlerCycles) +
                            _timing.ioctlEntry,
                        [this, pid, id, target, device] {
                      TaskExec *w = live(pid, id);
                      if (!w) {
                          releaseHost();
                          return;
                      }
                      Task &t = *w->task;
                      MigrationDescriptor d;
                      d.kind = DescriptorKind::hostToNxpCall;
                      d.pid = static_cast<std::uint32_t>(pid);
                      d.target = target;
                      d.cr3 = t.cr3;
                      d.nxpSp = currentNxpSp(t, device);
                      d.nargs = MigrationDescriptor::maxArgs;
                      for (unsigned i = 0; i < MigrationDescriptor::maxArgs;
                           ++i)
                          d.args[i] = _hostCore.arg(i);
                      hostSendDescriptor(*w, d, device);
                  });
              });
          });
}

void
MigrationEngine::completeCall(TaskExec &x, std::uint64_t value)
{
    x.future->value = value;
    x.future->status = CallStatus::ok;
    x.future->done = true;
    _stats.inc("calls_completed");
    tracePoint(TracePoint::callComplete, x.task->pid, x.id, 0, value);
    bool was_qos = x.qosAdmitted;
    unsigned tenant = x.tenant;
    if (was_qos) {
        // Feed the admission estimator with the observed end-to-end
        // latency and give the tenant's freed budget slot away.
        _qosModel.record(x.task->cr3, x.entry, _events.now() - x.admitted);
        _tenants.onRetire(tenant);
    }
    _exec.erase(x.task->pid);
    traceGauge(TraceGauge::inFlightCalls, 0, _exec.size());
    if (was_qos)
        pumpQosQueues();
    releaseHost();
}

void
MigrationEngine::hostSendDescriptor(TaskExec &x, MigrationDescriptor d,
                                    unsigned device)
{
    int pid = x.task->pid;
    std::uint64_t id = x.id;
    d.callId = id;
    if (d.kind == DescriptorKind::hostToNxpCall && !x.frames.empty()) {
        // Remember what the descriptor asks for in the call frame; the
        // host fallback path re-dispatches from this record if the
        // device dies under the call.
        CallFrame &top = x.frames.back();
        top.target = d.target;
        top.nargs = d.nargs;
        top.args = d.args;
    }
    after(_timing.descriptorPack, [this, pid, id, d, device] {
        TaskExec *w0 = live(pid, id);
        if (!w0) {
            releaseHost();
            return;
        }
        // Suspend TASK_KILLABLE, context switch away, then (and only
        // then) let the scheduler trigger the descriptor DMA
        // (Section IV-D).
        Task &task = *w0->task;
        _kernel.suspendForMigration(task, _hostCore.saveContext());
        after(_timing.suspendSwitch, [this, pid, id, d, device] {
            bool is_call = d.kind == DescriptorKind::hostToNxpCall;
            journal(is_call ? ProtocolStep::hostSendCall
                            : ProtocolStep::hostSendReturn,
                    pid, is_call ? d.target : d.retval);
            Cont fire = [this, pid, id, d, device] {
                TaskExec *w = live(pid, id);
                if (!w) {
                    releaseHost();
                    return;
                }
                Task &t = *w->task;
                if (!_kernel.takeMigrationTrigger(t)) {
                    panic("descriptor DMA requested without the "
                          "migration flag set");
                }
                NxpSide &s = side(device);
                if (s.health == DeviceHealth::quarantined) {
                    // The device died between the fault and the DMA
                    // trigger: the kernel fails the migration instead
                    // of staging into a drained ring.
                    failCall(*w, CallStatus::deviceLost);
                    releaseHost();
                    return;
                }
                if (s.h2d.full())
                    s.h2dDeferred.push_back(d);
                else
                    stageHostToNxp(d, device);
                // An armed race consumes the just-freed host core for
                // the speculative twin instead of giving it back
                // (DESIGN.md §16).
                if (w->specArmed && d.kind == DescriptorKind::hostToNxpCall)
                    launchSpeculation(*w, device);
                else
                    releaseHost();
            };
            if (is_call && _extraRoundTrip)
                after(_extraRoundTrip, std::move(fire));
            else
                fire();
        });
    });
}

void
MigrationEngine::stageHostToNxp(MigrationDescriptor d, unsigned device)
{
    if (!_batching) {
        fireHostToNxp(d, device);
        return;
    }
    NxpSide &s = side(device);
    // Batched: the kernel stages the descriptor into the ring now but
    // holds the DMA doorbell until the coalescing window closes, so
    // back-to-back sends to the same device ship as one chained burst.
    d.seq = ++s.h2dSendSeq;
    unsigned slot = s.h2d.push();
    writeHostStaging(d, device, slot);
    traceGauge(TraceGauge::h2dRing, device, s.h2d.inUse());
    s.h2dBatch.push_back({slot, static_cast<int>(d.pid), d.callId, d.kind});
    if (!s.batchFlushScheduled) {
        s.batchFlushScheduled = true;
        std::uint64_t epoch = s.batchEpoch;
        _events.scheduleIn(_timing.dmaBatchWindow, "h2d-batch-window",
                           [this, device, epoch] {
            NxpSide &t = side(device);
            if (t.batchEpoch != epoch)
                return; // quarantine tore the batch down under us
            t.batchFlushScheduled = false;
            flushH2dBatch(device);
        });
    }
}

void
MigrationEngine::flushH2dBatch(unsigned device)
{
    NxpSide &s = side(device);
    while (!s.h2dBatch.empty()) {
        // One burst per maximal run of contiguous ring slots: the DMA
        // chain walks a flat region of the staging array, so a run
        // breaks where the ring wraps back to slot 0.
        std::size_t n = 1;
        while (n < s.h2dBatch.size() &&
               s.h2dBatch[n].slot == s.h2dBatch[n - 1].slot + 1)
            ++n;
        std::vector<NxpSide::PendingBurst> run(s.h2dBatch.begin(),
                                               s.h2dBatch.begin() + n);
        s.h2dBatch.erase(s.h2dBatch.begin(), s.h2dBatch.begin() + n);

        protoStat("doorbell_writes", device);
        protoStat("batch.bursts", device);
        if (n > 1) {
            _stats.inc("batch.coalesced", n - 1);
            _stats.inc(strfmt("batch.coalesced_dev%u", device), n - 1);
        }
        if (n > _batchMaxDescs) {
            _batchMaxDescs = static_cast<unsigned>(n);
            _stats.set("batch.descs_per_burst_max", _batchMaxDescs);
        }
        for (const auto &e : run) {
            tracePoint(TracePoint::dmaToNxpStart, e.pid, e.callId, device);
            if (e.kind == DescriptorKind::hostToNxpCall)
                journal(ProtocolStep::dmaToNxp, e.pid);
        }
        NxpPlatform *platform = s.platform;
        // Resolve the burst's staging/mailbox region before the call:
        // the completion lambda's capture moves `run` out from under
        // any argument expression still referring to it.
        Addr staging_pa = s.h2d.stagingPa(run.front().slot);
        Addr mailbox_pa = s.h2d.mailboxPa(run.front().slot);
        s.dma->copyHostToNxp(staging_pa, mailbox_pa,
                             n * MigrationDescriptor::wireBytes,
                             [this, platform, device,
                              run = std::move(run)] {
                                 for (const auto &e : run) {
                                     ++side(device).progress;
                                     tracePoint(TracePoint::dmaToNxpDone,
                                                e.pid, e.callId, device);
                                     platform->inboxArrived();
                                 }
                                 kickNxp(device);
                             },
                             static_cast<unsigned>(n));
    }
}

void
MigrationEngine::fireHostToNxp(MigrationDescriptor d, unsigned device)
{
    NxpSide &s = side(device);
    // The kernel stamps the link sequence number as it stages the
    // descriptor; fire order is ring order, so the device expects
    // exactly this sequence.
    d.seq = ++s.h2dSendSeq;
    unsigned slot = s.h2d.push();
    writeHostStaging(d, device, slot);
    tracePoint(TracePoint::dmaToNxpStart, static_cast<int>(d.pid),
               d.callId, device);
    traceGauge(TraceGauge::h2dRing, device, s.h2d.inUse());
    protoStat("doorbell_writes", device);
    NxpPlatform *platform = s.platform;
    int dpid = static_cast<int>(d.pid);
    std::uint64_t cid = d.callId;
    s.dma->copyHostToNxp(s.h2d.stagingPa(slot), s.h2d.mailboxPa(slot),
                         MigrationDescriptor::wireBytes,
                         [this, platform, device, dpid, cid] {
                             ++side(device).progress;
                             tracePoint(TracePoint::dmaToNxpDone, dpid, cid,
                                        device);
                             platform->inboxArrived();
                             kickNxp(device);
                         });
    if (d.kind == DescriptorKind::hostToNxpCall)
        journal(ProtocolStep::dmaToNxp, static_cast<int>(d.pid));
}

// --- NxP-side scheduling -------------------------------------------------

void
MigrationEngine::kickNxp(unsigned device)
{
    NxpSide &s = side(device);
    if (s.busy || s.kickScheduled || s.platform->pendingInbox() == 0)
        return;
    s.kickScheduled = true;
    after(0, [this, device] {
        side(device).kickScheduled = false;
        dispatchNxp(device);
    });
}

void
MigrationEngine::dispatchNxp(unsigned device)
{
    NxpSide &s = side(device);
    if (s.dead || s.health == DeviceHealth::quarantined)
        return; // nobody home; the watchdog notices the silence
    if (s.busy || s.platform->pendingInbox() == 0)
        return;
    if (_chaos && _chaos->shouldKillNxpDevice()) {
        // The device's scheduler core dies right here: the pending
        // inbox descriptor is never picked up and nothing the device
        // owes will ever complete. Only the health watchdog can tell.
        s.dead = true;
        s.segmentEnd = _events.now();
        _stats.inc("chaos_device_deaths");
        return;
    }
    s.busy = true;
    // The NxP scheduler polls the DMA status register (Listing 2):
    // one poll iteration plus the status register read.
    after(nxpCycles(device, _timing.nxpPollCycles) + _timing.nxpToLocalMmio,
          [this, device] {
        // Fetch and parse the descriptor from the local inbox ring.
        after(nxpCycles(device, _timing.nxpDescriptorCycles) +
                  _timing.nxpToNxpDram,
              [this, device] {
            NxpSide &t = side(device);
            unsigned slot = t.h2d.front();
            MigrationDescriptor::Wire w = readNxpInboxWire(device, slot);
            // The scheduler verifies the slot before trusting any field
            // in it; a corrupted burst is NAKed and retransmitted from
            // the host's intact staging copy.
            MigrationDescriptor d;
            bool ok = MigrationDescriptor::wireIntact(w);
            if (ok) {
                d = MigrationDescriptor::fromWire(w);
                ok = d.seq == t.h2dAcceptSeq + 1;
                if (!ok)
                    protoStat("seq_mismatches", device);
            }
            if (!ok) {
                nakH2d(device);
                return;
            }
            t.h2dAcceptSeq = d.seq;
            t.h2dRetries = 0;
            ++t.progress;
            t.h2d.pop();
            traceGauge(TraceGauge::h2dRing, device, t.h2d.inUse());
            t.platform->consumeInbox();
            // The freed slot unblocks a deferred host-side send.
            if (!t.h2dDeferred.empty() && !t.h2d.full()) {
                MigrationDescriptor dd = t.h2dDeferred.front();
                t.h2dDeferred.pop_front();
                stageHostToNxp(dd, device);
            }
            // ACK through the control register.
            after(_timing.nxpToLocalMmio, [this, device, d] {
                handleNxpDescriptor(device, d);
            });
        });
    });
}

void
MigrationEngine::releaseNxp(unsigned device)
{
    side(device).busy = false;
    kickNxp(device);
}

void
MigrationEngine::handleNxpDescriptor(unsigned device,
                                     MigrationDescriptor d)
{
    int pid = static_cast<int>(d.pid);

    switch (d.kind) {
      case DescriptorKind::hostToNxpCall: {
        journal(ProtocolStep::nxpPickup, pid, d.target);
        // Context switch into the thread using the descriptor's stack
        // pointer.
        after(nxpCycles(device, _timing.nxpCtxSwitchCycles),
              [this, device, d, pid] {
            TaskExec *x = live(pid, d.callId);
            if (!x) {
                // The call this descriptor belongs to was failed or
                // cancelled while the descriptor was in flight.
                protoStat("stale_descriptors", device);
                releaseNxp(device);
                return;
            }
            NxpSide &s = side(device);
            Core &core = *s.core;
            core.mmu().setCr3(d.cr3);
            s.loadedCr3 = d.cr3;
            core.setStackPointer(d.nxpSp);
            std::vector<std::uint64_t> args(d.args.begin(),
                                            d.args.begin() + d.nargs);
            core.setupCall(d.target, args);
            journal(ProtocolStep::nxpCallStart, pid, d.target);
            tracePoint(TracePoint::nxpCallStart, pid, d.callId, device,
                       d.target);
            runNxpSegment(*x, device);
        });
        return;
      }

      case DescriptorKind::hostToNxpReturn: {
        // Context switch the thread back in and resume it where it
        // faulted.
        after(nxpCycles(device, _timing.nxpCtxSwitchCycles),
              [this, device, d, pid] {
            TaskExec *xp = live(pid, d.callId);
            if (!xp) {
                protoStat("stale_descriptors", device);
                releaseNxp(device);
                return;
            }
            NxpSide &s = side(device);
            Core &core = *s.core;
            TaskExec &x = *xp;
            Task &task = *x.task;
            if (task.nxpSavedCtx.empty() ||
                task.nxpSavedCtx.back().device != device) {
                panic("host->NxP return with mismatched saved NxP "
                      "context");
            }
            if (s.loadedCr3 != task.cr3) {
                core.mmu().setCr3(task.cr3);
                s.loadedCr3 = task.cr3;
            }
            core.restoreContext(task.nxpSavedCtx.back().context);
            task.nxpSavedCtx.pop_back();
            journal(ProtocolStep::nxpResume, pid, core.pc());
            tracePoint(TracePoint::nxpResume, pid, d.callId, device);

            if (x.frames.empty() || x.frames.back().caller != device) {
                panic("NxP %u resumed task %d without a matching call "
                      "frame", device, pid);
            }
            CallFrame f = x.frames.back();
            x.frames.pop_back();
            ++task.migrations;
            if (f.callee == hostSide) {
                _stats.inc("nxp_host_nxp_roundtrips");
                _stats.inc("nxp_host_nxp_ticks", _events.now() - f.t0);
            } else {
                _stats.inc("nxp_to_nxp_roundtrips");
            }
            // Device-originated round trips feed the cost model too
            // (the relayed-call feedback gap): the EWMAs would
            // otherwise never learn from d2h or d2d calls.
            recordPlacementOutcome(task, f);
            core.finishHijackedCall(d.retval);
            runNxpSegment(x, device);
        });
        return;
      }

      default:
        panic("NxP %u received unexpected descriptor kind %s", device,
              descriptorKindName(d.kind));
    }
}

void
MigrationEngine::runNxpSegment(TaskExec &x, unsigned device)
{
    int pid = x.task->pid;
    std::uint64_t id = x.id;
    NxpSide &s = side(device);
    if (_chaos && _chaos->shouldWedgeNxpCore()) {
        // The core wedges a few instructions into the segment (a hung
        // accelerator pipeline): the architectural state stops
        // advancing and no stop event is ever scheduled. The core
        // stays busy forever; recovery is the health watchdog's job.
        bool spec_window = _spec && _spec->matches(pid, id) &&
                           _spec->device() == device;
        if (spec_window)
            _spec->beginDeviceWindow(device);
        RunResult r = s.core->run(_chaos->wedgeProgress());
        if (spec_window)
            _spec->endDeviceWindow();
        if (r.stop == Fault::none) {
            s.segmentEnd = _events.now();
            _stats.inc("chaos_core_wedges");
            return;
        }
        // The segment was shorter than the wedge budget; it completed
        // architecturally before the hang could bite.
        s.segmentEnd = _events.now() + r.elapsed;
        after(r.elapsed,
              [this, pid, id, device, r] {
                  handleNxpStop(pid, id, device, r);
              });
        return;
    }
    // The racing twin of an active speculation is exempt from conflict
    // detection for exactly this slice: its stores are byte-identical
    // to the buffered host stores that would replay over them.
    bool spec_window = _spec && _spec->matches(pid, id) &&
                       _spec->device() == device;
    if (spec_window)
        _spec->beginDeviceWindow(device);
    RunResult r = s.core->run();
    if (spec_window)
        _spec->endDeviceWindow();
    // While the segment's time is being charged the busy core is
    // computing, not stalled; tell the watchdog when that excuse ends.
    s.segmentEnd = _events.now() + r.elapsed;
    after(r.elapsed,
          [this, pid, id, device, r] {
              handleNxpStop(pid, id, device, r);
          });
}

void
MigrationEngine::handleNxpStop(int pid, std::uint64_t id, unsigned device,
                               RunResult r)
{
    ++side(device).progress; // a retired segment is forward progress
    TaskExec *xp = live(pid, id);
    if (!xp) {
        // Usually a host-committed race cut this side before the
        // function finished charging its time. The device-side cost is
        // known regardless (the segment just retired): harvest it as
        // the model's device sample, short only of the return leg the
        // cut saved.
        if (r.stop == Fault::trampoline)
            harvestSpecSample(pid, id);
        releaseNxp(device);
        return;
    }
    TaskExec &x = *xp;
    Core &core = *side(device).core;

    switch (r.stop) {
      case Fault::trampoline: {
        // (f) The NxP function finished: ship the return value home.
        std::uint64_t rv = core.retVal();
        tracePoint(TracePoint::nxpDescBuild, pid, id, device, rv);
        MigrationDescriptor ret;
        ret.kind = DescriptorKind::nxpToHostReturn;
        ret.pid = static_cast<std::uint32_t>(pid);
        ret.retval = rv;
        deviceSendToHost(x, ret, device, ProtocolStep::nxpSendReturn, rv);
        return;
      }

      case Fault::nonNxFetch:
      case Fault::misalignedFetch: {
        FaultAction action =
            _kernel.classifyFetchFault(r.stop, IsaKind::rv64);
        if (action != FaultAction::migrateToHost)
            panic("NxP fetch fault not classified as migration");
        tracePoint(TracePoint::nxpFault, pid, id, device, r.faultVa);
        startNxpFaultMigration(x, r.faultVa, device);
        return;
      }

      default:
        fatal("guest fault on the NxP core: %s at %#llx "
              "(pc %#llx, pid %d)",
              faultName(r.stop), (unsigned long long)r.faultVa,
              (unsigned long long)core.pc(), pid);
    }
}

void
MigrationEngine::startNxpFaultMigration(TaskExec &x, VAddr target,
                                        unsigned device)
{
    int pid = x.task->pid;
    std::uint64_t id = x.id;
    // The kernel classifies the target by the ISA tag in its PTE. The
    // upper table levels sit in the host's paging-structure caches, so
    // this is charged as a single leaf read; the value is fetched with
    // an untimed walk.
    after(_timing.hostToHostDram, [this, pid, id, target, device] {
        TaskExec *wp = live(pid, id);
        if (!wp) {
            releaseNxp(device);
            return;
        }
        TaskExec &w = *wp;
        Task &task = *w.task;
        Core &core = *side(device).core;

        Addr table = task.cr3;
        std::uint64_t entry = 0;
        bool present = false;
        for (int level = 3; level >= 0; --level) {
            std::uint64_t raw = 0;
            _mem.readInt(Requester::debug,
                         table + 8ull * tableIndex(target, level), 8, raw);
            if (!(raw & pte::present))
                break;
            if (level == 0 || (raw & pte::pageSize)) {
                entry = raw;
                present = true;
                break;
            }
            table = pte::entryAddr(raw);
        }
        if (!present) {
            fatal("guest on NxP %u jumped to unmapped address %#llx",
                  device, (unsigned long long)target);
        }

        unsigned tag = pte::isaTag(entry);
        unsigned dest = hostSide;
        if (tag != 0) {
            unsigned to = tag - nxpIsaTag;
            if (to >= _nxp.size())
                fatal("guest jumped to code tagged for missing NxP %u", to);
            if (to == device) {
                panic("NxP %u faulted on its own code at %#llx", device,
                      (unsigned long long)target);
            }
            dest = to;
        }

        // The faulted VA stays in the journal; the dispatch VA is what
        // the descriptor carries (a policy may re-point it at a twin).
        VAddr dispatch = target;
        VAddr canonical = target;
        if (dest != hostSide) {
            // Device-to-device calls go through the same decision point
            // as host-originated ones (the kernel relays them anyway);
            // the policy may rebalance onto another device's twin or —
            // if it says crossing loses — route the relay straight to
            // the host twin.
            Placed p = decidePlacement(task, target, dest, device);
            canonical = p.canonical;
            if (p.toHost) {
                protoStat("placement.host_steered", dest);
                dest = hostSide;
            } else if (p.device != dest) {
                protoStat("placement.rebalanced", p.device);
                dest = p.device;
            }
            dispatch = p.va;
        }

        _stats.inc(dest == hostSide ? "nxp_to_host_calls"
                                    : "nxp_to_nxp_calls");
        journal(ProtocolStep::nxpFault, pid, target);
        tracePoint(TracePoint::nxpDescBuild, pid, id, device, target);

        // Build the NxP->host call descriptor from the faulting call's
        // argument registers (Listing 2 lines 3-4).
        MigrationDescriptor d;
        d.kind = DescriptorKind::nxpToHostCall;
        d.pid = static_cast<std::uint32_t>(pid);
        d.target = dispatch;
        d.cr3 = task.cr3;
        d.nargs = MigrationDescriptor::maxArgs;
        for (unsigned i = 0; i < MigrationDescriptor::maxArgs; ++i)
            d.args[i] = core.arg(i);

        // Save the thread's NxP context (the context switch to the NxP
        // scheduler); the device core frees up once the send completes.
        task.nxpSavedCtx.push_back(
            {device, core.saveContext(), core.stackPointer()});
        {
            CallFrame f{dest, device, _events.now()};
            f.canonical = canonical;
            w.frames.push_back(f);
        }

        if (_extraRoundTrip) {
            after(_extraRoundTrip, [this, pid, id, d, device, target] {
                TaskExec *v = live(pid, id);
                if (!v) {
                    releaseNxp(device);
                    return;
                }
                deviceSendToHost(*v, d, device,
                                 ProtocolStep::nxpSendCall, target);
            });
        } else {
            deviceSendToHost(w, d, device, ProtocolStep::nxpSendCall,
                             target);
        }
    });
}

void
MigrationEngine::deviceSendToHost(TaskExec &x, MigrationDescriptor d,
                                  unsigned device, ProtocolStep step,
                                  VAddr addr)
{
    int pid = x.task->pid;
    d.callId = x.id;
    after(nxpCycles(device, _timing.nxpDescriptorCycles) +
              _timing.nxpToNxpDram,
          [this, pid, d, device, step, addr] {
        // Context switch to the NxP scheduler, ring the DMA doorbell.
        after(nxpCycles(device, _timing.nxpCtxSwitchCycles) +
                  _timing.nxpToLocalMmio,
              [this, pid, d, device, step, addr] {
            NxpSide &s = side(device);
            if (s.dead || s.health == DeviceHealth::quarantined) {
                // The device (or its link) was written off while the
                // send was being staged; nothing may enter the drained
                // rings. The waiting caller is failed by quarantine.
                protoStat("dropped_descriptors", device);
                releaseNxp(device);
                return;
            }
            if (s.d2h.full())
                s.d2hDeferred.push_back(d);
            else
                fireNxpToHost(d, device);
            journal(step, pid, addr);
            releaseNxp(device);
        });
    });
}

void
MigrationEngine::fireNxpToHost(MigrationDescriptor d, unsigned device)
{
    NxpSide &s = side(device);
    d.seq = ++s.d2hSendSeq;
    unsigned slot = s.d2h.push();
    writeNxpOutbox(d, device, slot);
    tracePoint(TracePoint::dmaToHostStart, static_cast<int>(d.pid),
               d.callId, device);
    traceGauge(TraceGauge::d2hRing, device, s.d2h.inUse());
    int dpid = static_cast<int>(d.pid);
    std::uint64_t cid = d.callId;
    s.dma->copyNxpToHost(s.d2h.stagingPa(slot), s.d2h.mailboxPa(slot),
                         MigrationDescriptor::wireBytes,
                         static_cast<int>(s.irqVector),
                         [this, device, dpid, cid] {
                             NxpSide &t = side(device);
                             ++t.d2hLanded;
                             ++t.progress;
                             tracePoint(TracePoint::dmaToHostDone, dpid, cid,
                                        device);
                         });
    armD2hWatchdog(device, d.seq);
}

void
MigrationEngine::hostIrq(unsigned device)
{
    // The device raised the DMA-complete MSI: read the descriptor out
    // of the inbox ring, then let the IRQ handler find and wake the
    // suspended task.
    protoStat("host_irqs", device);
    NxpSide &s = side(device);
    if (s.d2hLanded == 0) {
        // A duplicated MSI, or one whose descriptor the watchdog has
        // already serviced: nothing unserviced has landed.
        protoStat("spurious_irqs", device);
        return;
    }
    processHostInbox(device);
}

void
MigrationEngine::processHostInbox(unsigned device)
{
    NxpSide &s = side(device);
    unsigned slot = s.d2h.front();
    MigrationDescriptor::Wire w = readHostInboxWire(device, slot);
    MigrationDescriptor d;
    bool ok = MigrationDescriptor::wireIntact(w);
    if (ok) {
        d = MigrationDescriptor::fromWire(w);
        ok = d.seq == s.d2hAcceptSeq + 1;
        if (!ok)
            protoStat("seq_mismatches", device);
    }
    if (!ok) {
        nakD2h(device);
        return;
    }
    s.d2hAcceptSeq = d.seq;
    s.d2hRetries = 0;
    ++s.progress;
    --s.d2hLanded;
    s.d2h.pop();
    traceGauge(TraceGauge::d2hRing, device, s.d2h.inUse());
    if (!s.d2hDeferred.empty() && !s.d2h.full()) {
        MigrationDescriptor dd = s.d2hDeferred.front();
        s.d2hDeferred.pop_front();
        fireNxpToHost(dd, device);
    }
    after(_timing.irqWake, [this, d, device] {
        int pid = static_cast<int>(d.pid);
        TaskExec *x = live(pid, d.callId);
        if (!x) {
            // The call this return belongs to is gone (failed,
            // cancelled, already failed over — or its host twin won a
            // speculative race and the id moved on). A host-committed
            // race's straggler return still carries a usable device-
            // side latency sample; credit it before dropping the wake.
            if (d.kind == DescriptorKind::nxpToHostReturn)
                harvestSpecSample(pid, d.callId);
            protoStat("stale_descriptors", device);
            return;
        }
        if (x->pendingFallback || x->task->state != TaskState::onNxp) {
            // The thread was already rescued out of its suspension
            // (host fallback in flight); this straggler return must
            // not wake it a second time.
            protoStat("stale_descriptors", device);
            return;
        }
        if (_spec && _spec->matches(pid, d.callId)) {
            if (d.kind == DescriptorKind::nxpToHostReturn) {
                // The NxP side finished first: it wins the race. The
                // host twin's cost is still functionally known — feed
                // it as the host-side sample (the other half of the
                // free double-sample), then squash the speculation and
                // let the wake proceed on the freed core.
                protoStat("spec.committed_nxp", device);
                tracePoint(TracePoint::specSquash, pid, d.callId, device);
                if (_specRun.committable && _policy &&
                    _policy->wantsFeedback() && !x->frames.empty() &&
                    x->frames.back().canonical) {
                    _policy->recordHostCall(
                        x->task->cr3, x->frames.back().canonical,
                        _spec->launchTick() + _specRun.elapsed -
                            x->frames.back().t0);
                    _stats.inc("placement.model_updates");
                }
                retireSpec(false);
            } else {
                // The racing twin made a nested cross-ISA call: the
                // race is no longer a simple leaf race (the host twin
                // cannot mirror device-side nesting). Abort it; the
                // nested call then proceeds normally.
                tracePoint(TracePoint::specSquash, pid, d.callId, device);
                retireSpec(true);
            }
        }
        _kernel.wake(*x->task);
        tracePoint(TracePoint::hostWake, pid, d.callId, device);
        x->pendingWake = true;
        x->wakeDesc = d;
        _kernel.enqueueRunnable(*x->task);
        kickHost();
    });
}

// --- Link integrity (NAK / retransmit / timeout) -------------------------

void
MigrationEngine::nakH2d(unsigned device)
{
    NxpSide &s = side(device);
    protoStat("naks", device);
    if (++s.h2dRetries > _retryBudget)
        unrecoverable("host->NxP", device);
    protoStat("retries", device);
    // The corrupt arrival is consumed; the retransmission will signal a
    // fresh one. The host's staging copy of the head slot is intact, so
    // the NAK just replays its DMA burst.
    s.platform->consumeInbox();
    unsigned slot = s.h2d.front();
    NxpPlatform *platform = s.platform;
    protoStat("doorbell_writes", device);
    s.dma->copyHostToNxp(s.h2d.stagingPa(slot), s.h2d.mailboxPa(slot),
                         MigrationDescriptor::wireBytes,
                         [this, platform, device] {
                             platform->inboxArrived();
                             kickNxp(device);
                         });
    releaseNxp(device);
}

void
MigrationEngine::nakD2h(unsigned device)
{
    NxpSide &s = side(device);
    protoStat("naks", device);
    if (++s.d2hRetries > _retryBudget)
        unrecoverable("NxP->host", device);
    protoStat("retries", device);
    // The landed copy is trash; replay the outbox slot's burst. The
    // watchdog armed at first fire keeps covering the retransmission's
    // MSI, which may itself be lost.
    --s.d2hLanded;
    unsigned slot = s.d2h.front();
    s.dma->copyNxpToHost(s.d2h.stagingPa(slot), s.d2h.mailboxPa(slot),
                         MigrationDescriptor::wireBytes,
                         static_cast<int>(s.irqVector),
                         [this, device] { ++side(device).d2hLanded; });
}

void
MigrationEngine::armD2hWatchdog(unsigned device, std::uint64_t seq)
{
    // Without fault injection MSIs cannot be lost; leave the event
    // stream untouched so fault-free runs stay tick-for-tick identical.
    if (!_chaos || !_chaos->enabled())
        return;
    _events.scheduleIn(_timing.descriptorTimeout, "d2h-watchdog",
                       [this, device, seq] {
        NxpSide &s = side(device);
        if (s.d2hAcceptSeq >= seq)
            return; // serviced in time; disarm
        if (s.d2hLanded == 0) {
            // Still in flight (delayed burst or pending retransmission);
            // keep watching.
            armD2hWatchdog(device, seq);
            return;
        }
        // The descriptor landed but its MSI never arrived: the driver's
        // poll finds and services it.
        protoStat("timeouts", device);
        processHostInbox(device);
        if (side(device).d2hAcceptSeq < seq)
            armD2hWatchdog(device, seq); // NAKed; watch the retry
    });
}

void
MigrationEngine::unrecoverable(const char *link, unsigned device)
{
    fatal("unrecoverable fabric fault: descriptor on the %s link of "
          "NxP %u still corrupt after %u retransmissions%s",
          link, device, _retryBudget,
          _chaos ? strfmt(" (chaos seed %llu)",
                          (unsigned long long)_chaos->seed())
                       .c_str()
                 : "");
}

// --- Device health, deadlines and failover -------------------------------

void
MigrationEngine::killDevice(unsigned device)
{
    NxpSide &s = side(device);
    s.dead = true;
    s.segmentEnd = _events.now();
    _stats.inc("devices_killed");
    armHeartbeat();
}

bool
MigrationEngine::cancelCall(int pid)
{
    auto qit = _qosQueuedPid.find(pid);
    if (qit != _qosQueuedPid.end()) {
        // The call never entered the engine; lift it straight out of
        // its tenant's submission queue.
        cancelQueuedCall(pid, qit->second);
        return true;
    }
    auto it = _exec.find(pid);
    if (it == _exec.end() || it->second.future->done)
        return false;
    failCall(it->second, CallStatus::cancelled);
    return true;
}

void
MigrationEngine::armHeartbeat()
{
    if (_heartbeatArmed)
        return;
    _heartbeatArmed = true;
    _events.scheduleIn(_timing.deviceHeartbeat, "device-heartbeat",
                       [this] { heartbeat(); });
}

void
MigrationEngine::heartbeat()
{
    Tick now = _events.now();

    // Deadlines first: a stalled call on a wedged device should report
    // deadlineExceeded when the caller asked for a bound, even if the
    // same beat would also quarantine the device.
    std::vector<int> late;
    for (const auto &kv : _exec) {
        if (kv.second.deadline && now >= kv.second.deadline)
            late.push_back(kv.first);
    }
    for (int pid : late) {
        auto it = _exec.find(pid);
        if (it != _exec.end())
            failCall(it->second, CallStatus::deadlineExceeded);
    }

    // Then per-device progress: a device owing work must show forward
    // progress between beats, unless its core is legitimately inside a
    // long segment whose retirement is already scheduled.
    for (unsigned dev = 0; dev < _nxp.size(); ++dev) {
        NxpSide &s = _nxp[dev];
        if (s.health == DeviceHealth::quarantined)
            continue;
        bool outstanding = !deviceIdle(s);
        bool advanced = s.progress != s.lastProgress;
        s.lastProgress = s.progress;
        if (!outstanding || advanced || (s.busy && now < s.segmentEnd)) {
            s.strikes = 0;
            if (s.health == DeviceHealth::suspect) {
                s.health = DeviceHealth::healthy;
                protoStat("health_recoveries", dev);
            }
            continue;
        }
        strike(dev);
    }

    // Keep beating while calls are in flight; a later submit or
    // killDevice re-arms an idle watchdog.
    _heartbeatArmed = false;
    if (!_exec.empty())
        armHeartbeat();
}

void
MigrationEngine::strike(unsigned device)
{
    NxpSide &s = side(device);
    ++s.strikes;
    protoStat("health_strikes", device);
    if (s.health == DeviceHealth::healthy)
        s.health = DeviceHealth::suspect;
    if (s.strikes >= _strikeLimit)
        quarantineDevice(device);
}

bool
MigrationEngine::deviceIdle(const NxpSide &s) const
{
    return !s.busy && s.h2d.empty() && s.d2h.empty() &&
           s.h2dDeferred.empty() && s.d2hDeferred.empty() &&
           s.platform->pendingInbox() == 0 && !s.dma->busy();
}

void
MigrationEngine::quarantineDevice(unsigned device)
{
    NxpSide &s = side(device);
    if (s.health == DeviceHealth::quarantined)
        return;
    s.health = DeviceHealth::quarantined;
    protoStat("quarantines", device);
    if (_qos.enabled) {
        // The capacity the fabric just lost propagates into admission:
        // effectiveTenantBudget() shrinks with the alive-device count,
        // and this counter's _dev# split records who took it away.
        protoStat("qos.capacity_lost", device);
    }

    // Nothing staged for or by the device will ever be serviced again:
    // drop the in-flight rings, the backpressure queues and any landed-
    // but-unserviced returns, then fail every call that depends on it.
    s.h2d.drain();
    s.d2h.drain();
    s.h2dDeferred.clear();
    s.d2hDeferred.clear();
    s.d2hLanded = 0;
    // An open batch window dies with the rings; the epoch bump makes a
    // pending window-close event a no-op.
    s.h2dBatch.clear();
    s.batchFlushScheduled = false;
    ++s.batchEpoch;

    // failCall erases from _exec, so sweep over a PID snapshot.
    std::vector<int> pids;
    for (const auto &kv : _exec) {
        if (execTouches(kv.second, device))
            pids.push_back(kv.first);
    }
    for (int pid : pids) {
        auto it = _exec.find(pid);
        if (it != _exec.end())
            failCall(it->second, CallStatus::deviceLost);
    }
}

bool
MigrationEngine::execTouches(const TaskExec &x, unsigned device) const
{
    for (const CallFrame &f : x.frames) {
        if (f.callee == device || f.caller == device)
            return true;
    }
    for (const auto &ctx : x.task->nxpSavedCtx) {
        if (ctx.device == device)
            return true;
    }
    return false;
}

void
MigrationEngine::failCall(TaskExec &x, CallStatus status)
{
    if (x.future->done)
        return;
    if (_spec && _spec->matches(x.task->pid, x.id)) {
        // The raced call is dying (cancel, deadline, device loss): the
        // speculation dies with it and must give the host core back
        // before any failover tries to claim it.
        tracePoint(TracePoint::specSquash, x.task->pid, x.id,
                   _spec->device());
        retireSpec(true);
    }
    unsigned dev = execDevice(x);
    if (status == CallStatus::deviceLost && canFailover(x)) {
        scheduleFallback(x);
        return;
    }

    x.future->value = 0;
    x.future->status = status;
    x.future->done = true;
    _stats.inc("calls_failed");
    tracePoint(TracePoint::callFailed, x.task->pid, x.id,
               dev == hostSide ? 0 : dev, static_cast<std::uint64_t>(status));
    switch (status) {
      case CallStatus::cancelled:
        failStat("cancellations", dev);
        break;
      case CallStatus::deadlineExceeded:
        failStat("deadline_exceeded", dev);
        break;
      case CallStatus::deviceLost:
        failStat("device_lost", dev);
        break;
      default:
        panic("failCall with status %s", callStatusName(status));
    }

    // Unwind the thread's migration bookkeeping so the task object is
    // reusable (resubmit, teardown). In-flight continuations and
    // descriptors of this call die against the generation token.
    Task &task = *x.task;
    bool was_qos = x.qosAdmitted;
    unsigned tenant = x.tenant;
    _kernel.removeFromRunQueue(task);
    _kernel.abortMigration(task);
    task.nxpSavedCtx.clear();
    _exec.erase(task.pid);
    traceGauge(TraceGauge::inFlightCalls, 0, _exec.size());
    if (was_qos) {
        // Failed calls free the tenant's budget slot like completions,
        // but deliberately don't feed the cost model — a deadline kill
        // or device loss is not a service-time sample.
        _tenants.onRetire(tenant);
        pumpQosQueues();
    }
}

bool
MigrationEngine::canFailover(const TaskExec &x) const
{
    if (!_hostFallback || x.frames.empty())
        return false;
    const CallFrame &top = x.frames.back();
    if (top.callee == hostSide || top.callee >= _nxp.size())
        return false;
    if (top.target == 0) // descriptor never built: nothing to re-run
        return false;
    unsigned device = top.callee;
    // Only a leaf call is safely re-executable: the thread must be
    // suspended waiting for exactly this call, with no deeper frame and
    // no saved execution context on the lost device (those would mean
    // partially-executed state we cannot reconstruct).
    if (x.task->state != TaskState::onNxp || x.pendingWake ||
        x.pendingFallback)
        return false;
    for (std::size_t i = 0; i + 1 < x.frames.size(); ++i) {
        if (x.frames[i].callee == device || x.frames[i].caller == device)
            return false;
    }
    for (const auto &ctx : x.task->nxpSavedCtx) {
        if (ctx.device == device)
            return false;
    }
    return fallbackVa(x.task->cr3, top.target) != 0;
}

void
MigrationEngine::scheduleFallback(TaskExec &x)
{
    CallFrame &top = x.frames.back();
    protoStat("failovers", top.callee);
    // The frame becomes a host-executed call; its recorded target and
    // arguments drive the re-dispatch once the thread gets the core.
    top.callee = hostSide;
    x.pendingFallback = true;
    _kernel.wake(*x.task);
    _kernel.enqueueRunnable(*x.task);
    kickHost();
}

unsigned
MigrationEngine::execDevice(const TaskExec &x) const
{
    for (auto it = x.frames.rbegin(); it != x.frames.rend(); ++it) {
        if (it->callee != hostSide)
            return it->callee;
        if (it->caller != hostSide)
            return it->caller;
    }
    return hostSide;
}

} // namespace flick
