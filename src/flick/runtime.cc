#include "flick/runtime.hh"

#include "loader/loader.hh"

namespace flick
{

const char *
protocolStepName(ProtocolStep step)
{
    switch (step) {
      case ProtocolStep::hostNxFault: return "hostNxFault";
      case ProtocolStep::nxpStackAlloc: return "nxpStackAlloc";
      case ProtocolStep::hostSendCall: return "hostSendCall";
      case ProtocolStep::dmaToNxp: return "dmaToNxp";
      case ProtocolStep::nxpPickup: return "nxpPickup";
      case ProtocolStep::nxpCallStart: return "nxpCallStart";
      case ProtocolStep::nxpFault: return "nxpFault";
      case ProtocolStep::nxpSendCall: return "nxpSendCall";
      case ProtocolStep::hostWake: return "hostWake";
      case ProtocolStep::hostCallStart: return "hostCallStart";
      case ProtocolStep::hostSendReturn: return "hostSendReturn";
      case ProtocolStep::nxpResume: return "nxpResume";
      case ProtocolStep::nxpSendReturn: return "nxpSendReturn";
      case ProtocolStep::hostReturn: return "hostReturn";
      case ProtocolStep::hostForward: return "hostForward";
    }
    return "?";
}

MigrationEngine::MigrationEngine(EventQueue &events, MemSystem &mem,
                                 const TimingConfig &timing,
                                 Kernel &kernel, IrqController &irq,
                                 Core &host_core, Addr kernel_buf_pa)
    : _events(events), _mem(mem), _timing(timing), _kernel(kernel),
      _irq(irq), _hostCore(host_core), _kernelBufPa(kernel_buf_pa),
      _stats("flick")
{
}

void
MigrationEngine::addNxpDevice(Core &core, NxpPlatform &platform,
                              DmaEngine &dma, RegionHeap &stack_heap,
                              Addr host_inbox_pa, unsigned irq_vector)
{
    if (_nxp.size() >= Task::maxNxpDevices)
        fatal("too many NxP devices");
    NxpSide s{&core, &platform, &dma, &stack_heap, host_inbox_pa,
              irq_vector, 0};
    _nxp.push_back(s);
    unsigned device = static_cast<unsigned>(_nxp.size() - 1);
    _irq.connect(irq_vector, [this, device] { hostIrq(device); });
}

MigrationEngine::NxpSide &
MigrationEngine::side(unsigned device)
{
    if (device >= _nxp.size())
        panic("no NxP device %u", device);
    return _nxp[device];
}

void
MigrationEngine::advance(Tick t)
{
    _events.runUntil(_events.now() + t, true);
}

Tick
MigrationEngine::hostCycles(std::uint64_t n) const
{
    return _timing.hostClock().cycles(n);
}

Tick
MigrationEngine::nxpCycles(unsigned device, std::uint64_t n) const
{
    (void)device; // both devices run the same core configuration
    return _timing.nxpClock().cycles(n);
}

void
MigrationEngine::hostIrq(unsigned device)
{
    // The device raised the DMA-complete MSI; the kernel's IRQ handler
    // will find the task and wake it (charged on the receive path).
    ++side(device).hostInboxPending;
    _stats.inc("host_irqs");
}

void
MigrationEngine::writeKernelBuffer(const MigrationDescriptor &d)
{
    auto w = d.toWire();
    _mem.hostDram().write(_kernelBufPa, w.data(), w.size());
}

MigrationDescriptor
MigrationEngine::readNxpInbox(unsigned device)
{
    std::array<std::uint8_t, MigrationDescriptor::wireBytes> w{};
    Addr off = side(device).platform->inboxLocalPa() -
               _mem.platform().nxpDramLocalBase;
    _mem.nxpDram(device).read(off, w.data(), w.size());
    return MigrationDescriptor::fromWire(w);
}

void
MigrationEngine::writeNxpOutbox(const MigrationDescriptor &d,
                                unsigned device)
{
    auto w = d.toWire();
    Addr off = side(device).platform->outboxLocalPa() -
               _mem.platform().nxpDramLocalBase;
    _mem.nxpDram(device).write(off, w.data(), w.size());
}

MigrationDescriptor
MigrationEngine::readHostInbox(unsigned device)
{
    std::array<std::uint8_t, MigrationDescriptor::wireBytes> w{};
    _mem.hostDram().read(side(device).hostInboxPa, w.data(), w.size());
    return MigrationDescriptor::fromWire(w);
}

std::uint64_t
MigrationEngine::currentNxpSp(const Task &task, unsigned device) const
{
    for (auto it = _nxpCtxStack.rbegin(); it != _nxpCtxStack.rend(); ++it) {
        if (it->device == device)
            return it->sp & ~std::uint64_t(15);
    }
    return task.nxpStackTop[device] & ~std::uint64_t(15);
}

void
MigrationEngine::ensureNxpStack(Task &task, unsigned device)
{
    if (task.nxpStackTop[device] != 0)
        return;
    VAddr stack_base = side(device).stackHeap->allocate(_nxpStackBytes, 16);
    task.nxpStackTop[device] = stack_base + _nxpStackBytes;
    task.nxpStackBytes = _nxpStackBytes;
    advance(_timing.nxpStackAllocate);
    _stats.inc("nxp_stacks_allocated");
    journal(ProtocolStep::nxpStackAlloc, task.pid,
            task.nxpStackTop[device]);
}

void
MigrationEngine::sendCallToNxp(Task &task, const MigrationDescriptor &d,
                               unsigned device)
{
    advance(_timing.descriptorPack);
    writeKernelBuffer(d);

    // Suspend TASK_KILLABLE, context switch away, then (and only then)
    // let the scheduler trigger the descriptor DMA (Section IV-D).
    _kernel.suspendForMigration(task, _hostCore.saveContext());
    advance(_timing.suspendSwitch);
    journal(d.kind == DescriptorKind::hostToNxpCall
                ? ProtocolStep::hostSendCall
                : ProtocolStep::hostSendReturn,
            task.pid, d.kind == DescriptorKind::hostToNxpCall ? d.target
                                                              : d.retval);
    if (_extraRoundTrip && d.kind == DescriptorKind::hostToNxpCall)
        advance(_extraRoundTrip);

    if (!_kernel.takeMigrationTrigger(task))
        panic("descriptor DMA requested without the migration flag set");
    NxpSide &s = side(device);
    NxpPlatform *platform = s.platform;
    s.dma->copyHostToNxp(_kernelBufPa, platform->inboxLocalPa(),
                         MigrationDescriptor::wireBytes,
                         [platform] { platform->inboxArrived(); });
    if (d.kind == DescriptorKind::hostToNxpCall)
        journal(ProtocolStep::dmaToNxp, task.pid);
}

MigrationDescriptor
MigrationEngine::receiveOnNxp(unsigned device)
{
    NxpSide &s = side(device);
    // The NxP scheduler polls the DMA status register (Listing 2).
    waitFor([&s] { return s.platform->pendingInbox() > 0; });
    // Detection: one poll iteration plus the status register read.
    advance(nxpCycles(device, _timing.nxpPollCycles) +
            _timing.nxpToLocalMmio);
    // Fetch and parse the descriptor from the local inbox.
    advance(nxpCycles(device, _timing.nxpDescriptorCycles) +
            _timing.nxpToNxpDram);
    MigrationDescriptor d = readNxpInbox(device);
    // ACK through the control register.
    s.platform->consumeInbox();
    advance(_timing.nxpToLocalMmio);
    return d;
}

MigrationDescriptor
MigrationEngine::receiveOnHost(Task &task, unsigned device)
{
    NxpSide &s = side(device);
    waitFor([&s] { return s.hostInboxPending > 0; });
    --s.hostInboxPending;
    // IRQ handler: read the descriptor, find the task by PID, wake it.
    MigrationDescriptor d = readHostInbox(device);
    advance(_timing.irqWake);
    Task *by_pid = _kernel.findTask(static_cast<int>(d.pid));
    if (by_pid != &task)
        panic("descriptor PID %u does not match the waiting task %d",
              d.pid, task.pid);
    _kernel.wake(task);
    // Scheduler latency until the thread runs again, then the ioctl
    // returns into the user-space migration handler.
    advance(_timing.wakeupToRun);
    _hostCore.restoreContext(_kernel.resume(task));
    advance(_timing.ioctlExit);
    return d;
}

void
MigrationEngine::sendToHost(const MigrationDescriptor &d, unsigned device)
{
    NxpSide &s = side(device);
    advance(nxpCycles(device, _timing.nxpDescriptorCycles) +
            _timing.nxpToNxpDram);
    writeNxpOutbox(d, device);
    // Context switch to the NxP scheduler, ring the DMA doorbell.
    advance(nxpCycles(device, _timing.nxpCtxSwitchCycles) +
            _timing.nxpToLocalMmio);
    s.dma->copyNxpToHost(s.platform->outboxLocalPa(), s.hostInboxPa,
                         MigrationDescriptor::wireBytes,
                         static_cast<int>(s.irqVector));
}

std::uint64_t
MigrationEngine::runHostFunction(Task &task, VAddr entry,
                                 const std::vector<std::uint64_t> &args,
                                 VAddr stack_top)
{
    if (task.state != TaskState::created &&
        task.state != TaskState::running) {
        panic("runHostFunction on task %d in state %d", task.pid,
              static_cast<int>(task.state));
    }
    task.state = TaskState::running;
    _hostCore.mmu().setCr3(task.cr3);
    _hostCore.setStackPointer(stack_top & ~std::uint64_t(15));
    _hostCore.setupCall(entry, args);
    return hostLoop(task);
}

std::uint64_t
MigrationEngine::hostLoop(Task &task)
{
    for (;;) {
        RunResult r = _hostCore.run();
        advance(r.elapsed);

        switch (r.stop) {
          case Fault::trampoline:
            return _hostCore.retVal();

          case Fault::halt:
            if (_depth != 0)
                panic("program exit inside a nested cross-ISA call");
            task.state = TaskState::done;
            return _hostCore.retVal();

          case Fault::nxFetch: {
            FaultAction action =
                _kernel.classifyFetchFault(r.stop, IsaKind::hx64);
            if (action != FaultAction::migrateToNxp)
                panic("host NX fault not classified as migration");

            // The fault handler reads the PTE's software ISA tag
            // (cached in the I-TLB by the faulting fetch) to tell NxP
            // text from plain non-executable data and to pick the
            // target device (Section IV-C3).
            const TlbEntry *pte_entry =
                _hostCore.mmu().itlb().peek(r.faultVa);
            unsigned isa_tag =
                pte_entry ? pte::isaTag(pte_entry->flags) : 0;
            if (isa_tag < nxpIsaTag ||
                isa_tag - nxpIsaTag >= _nxp.size()) {
                fatal("guest jumped to NX page %#llx with ISA tag %u: "
                      "not code for any NxP (likely a call through a "
                      "data pointer)",
                      (unsigned long long)r.faultVa, isa_tag);
            }
            std::uint64_t rv =
                migrateCallToNxp(task, r.faultVa, isa_tag - nxpIsaTag);
            _hostCore.finishHijackedCall(rv);
            break;
          }

          default:
            // A genuine guest fault (the kernel would deliver SIGSEGV /
            // SIGILL): a user error, not a simulator bug.
            fatal("guest fault on the host core: %s at %#llx "
                  "(pc %#llx, pid %d)",
                  faultName(r.stop), (unsigned long long)r.faultVa,
                  (unsigned long long)_hostCore.pc(), task.pid);
        }
    }
}

std::uint64_t
MigrationEngine::nxpLoop(Task &task, unsigned device)
{
    Core &core = *side(device).core;
    for (;;) {
        RunResult r = core.run();
        advance(r.elapsed);

        switch (r.stop) {
          case Fault::trampoline:
            return core.retVal();

          case Fault::nonNxFetch:
          case Fault::misalignedFetch: {
            FaultAction action =
                _kernel.classifyFetchFault(r.stop, IsaKind::rv64);
            if (action != FaultAction::migrateToHost)
                panic("NxP fetch fault not classified as migration");
            std::uint64_t rv = dispatchNxpFault(task, r.faultVa, device);
            core.finishHijackedCall(rv);
            break;
          }

          default:
            fatal("guest fault on the NxP core: %s at %#llx "
                  "(pc %#llx, pid %d)",
                  faultName(r.stop), (unsigned long long)r.faultVa,
                  (unsigned long long)core.pc(), task.pid);
        }
    }
}

std::uint64_t
MigrationEngine::dispatchNxpFault(Task &task, VAddr target,
                                  unsigned device)
{
    // The kernel classifies the target by the ISA tag in its PTE. The
    // upper table levels sit in the host's paging-structure caches, so
    // this is charged as a single leaf read; the value is fetched with
    // an untimed walk.
    advance(_timing.hostToHostDram);
    Addr table = task.cr3;
    std::uint64_t entry = 0;
    bool present = false;
    for (int level = 3; level >= 0; --level) {
        std::uint64_t raw = 0;
        _mem.readInt(Requester::debug,
                     table + 8ull * tableIndex(target, level), 8, raw);
        if (!(raw & pte::present))
            break;
        if (level == 0 || (raw & pte::pageSize)) {
            entry = raw;
            present = true;
            break;
        }
        table = pte::entryAddr(raw);
    }
    if (!present) {
        fatal("guest on NxP %u jumped to unmapped address %#llx", device,
              (unsigned long long)target);
    }
    unsigned tag = pte::isaTag(entry);
    if (tag == 0)
        return migrateCallToHost(task, target, device);
    unsigned to = tag - nxpIsaTag;
    if (to >= _nxp.size()) {
        fatal("guest jumped to code tagged for missing NxP %u", to);
    }
    if (to == device) {
        panic("NxP %u faulted on its own code at %#llx", device,
              (unsigned long long)target);
    }
    return migrateNxpToNxp(task, target, device, to);
}

std::uint64_t
MigrationEngine::runOnNxpAndReturn(Task &task, unsigned device)
{
    MigrationDescriptor call = receiveOnNxp(device);
    journal(ProtocolStep::nxpPickup, task.pid, call.target);
    if (call.kind != DescriptorKind::hostToNxpCall)
        panic("NxP expected a call descriptor, got kind %u",
              static_cast<unsigned>(call.kind));

    // Context switch into the thread using the descriptor's stack
    // pointer.
    Core &core = *side(device).core;
    advance(nxpCycles(device, _timing.nxpCtxSwitchCycles));
    core.mmu().setCr3(call.cr3);
    core.setStackPointer(call.nxpSp);
    std::vector<std::uint64_t> args(call.args.begin(),
                                    call.args.begin() + call.nargs);
    core.setupCall(call.target, args);
    journal(ProtocolStep::nxpCallStart, task.pid, call.target);

    std::uint64_t rv = nxpLoop(task, device);

    // --- Return migration: NxP -> host ---------------------------------
    MigrationDescriptor ret;
    ret.kind = DescriptorKind::nxpToHostReturn;
    ret.pid = static_cast<std::uint32_t>(task.pid);
    ret.retval = rv;
    sendToHost(ret, device);
    journal(ProtocolStep::nxpSendReturn, task.pid, rv);

    MigrationDescriptor back = receiveOnHost(task, device);
    journal(ProtocolStep::hostReturn, task.pid, back.retval);
    if (back.kind != DescriptorKind::nxpToHostReturn)
        panic("host expected a return descriptor, got kind %u",
              static_cast<unsigned>(back.kind));
    return back.retval;
}

std::uint64_t
MigrationEngine::migrateCallToNxp(Task &task, VAddr target,
                                  unsigned device)
{
    ++_depth;
    _stats.inc("host_to_nxp_calls");
    Tick t0 = _events.now();

    // --- Host side: Listing 1 -------------------------------------------
    // Kernel NX fault service: decode, save the faulting address in the
    // task_struct, hijack the return address to the migration handler,
    // then trap-exit into the hijacked user-space handler.
    task.savedFaultAddr = target;
    journal(ProtocolStep::hostNxFault, task.pid, target);
    advance(_timing.nxFaultService);
    advance(_timing.faultTrapExit);

    // First migration to this device: allocate the thread's NxP stack
    // (Listing 1 lines 3-4).
    ensureNxpStack(task, device);

    // User-space handler gathers its (hijacked) arguments.
    advance(hostCycles(_timing.hostHandlerCycles));

    // ioctl(): package target, args, CR3, PID, NxP SP into a descriptor.
    advance(_timing.ioctlEntry);
    MigrationDescriptor d;
    d.kind = DescriptorKind::hostToNxpCall;
    d.pid = static_cast<std::uint32_t>(task.pid);
    d.target = target;
    d.cr3 = task.cr3;
    d.nxpSp = currentNxpSp(task, device);
    d.nargs = MigrationDescriptor::maxArgs;
    for (unsigned i = 0; i < MigrationDescriptor::maxArgs; ++i)
        d.args[i] = _hostCore.arg(i);
    sendCallToNxp(task, d, device);

    // --- NxP side: Listing 2, then the return migration -----------------
    std::uint64_t rv = runOnNxpAndReturn(task, device);

    ++task.migrations;
    _stats.inc("host_nxp_host_roundtrips");
    _stats.inc("host_nxp_host_ticks", _events.now() - t0);
    --_depth;
    return rv;
}

std::uint64_t
MigrationEngine::migrateCallToHost(Task &task, VAddr target,
                                   unsigned device)
{
    ++_depth;
    _stats.inc("nxp_to_host_calls");
    Tick t0 = _events.now();
    journal(ProtocolStep::nxpFault, task.pid, target);

    Core &core = *side(device).core;

    // --- NxP side: the fault lands in the NxP migration handler ---------
    // Build the NxP->host call descriptor from the faulting call's
    // argument registers (Listing 2 lines 3-4).
    MigrationDescriptor d;
    d.kind = DescriptorKind::nxpToHostCall;
    d.pid = static_cast<std::uint32_t>(task.pid);
    d.target = target;
    d.cr3 = task.cr3;
    d.nargs = MigrationDescriptor::maxArgs;
    for (unsigned i = 0; i < MigrationDescriptor::maxArgs; ++i)
        d.args[i] = core.arg(i);

    // Save the thread's NxP context (the context switch to the NxP
    // scheduler) and ship the descriptor.
    _nxpCtxStack.push_back(
        {device, core.saveContext(), core.stackPointer()});
    if (_extraRoundTrip)
        advance(_extraRoundTrip);
    sendToHost(d, device);
    journal(ProtocolStep::nxpSendCall, task.pid, target);

    // --- Host side: wake inside the ioctl, call the target ---------------
    MigrationDescriptor call = receiveOnHost(task, device);
    journal(ProtocolStep::hostWake, task.pid, call.target);
    if (call.kind != DescriptorKind::nxpToHostCall)
        panic("host expected a call descriptor, got kind %u",
              static_cast<unsigned>(call.kind));
    std::vector<std::uint64_t> args(call.args.begin(),
                                    call.args.begin() + call.nargs);
    _hostCore.setupCall(call.target, args);
    journal(ProtocolStep::hostCallStart, task.pid, call.target);

    std::uint64_t rv = hostLoop(task);

    // --- Return migration: host -> NxP -----------------------------------
    advance(hostCycles(_timing.hostHandlerCycles));
    advance(_timing.ioctlEntry);
    MigrationDescriptor ret;
    ret.kind = DescriptorKind::hostToNxpReturn;
    ret.pid = static_cast<std::uint32_t>(task.pid);
    ret.retval = rv;
    ret.nxpSp = currentNxpSp(task, device);
    sendCallToNxp(task, ret, device);

    MigrationDescriptor back = receiveOnNxp(device);
    if (back.kind != DescriptorKind::hostToNxpReturn)
        panic("NxP expected a return descriptor, got kind %u",
              static_cast<unsigned>(back.kind));

    // Context switch the thread back in and resume it where it faulted.
    advance(nxpCycles(device, _timing.nxpCtxSwitchCycles));
    if (_nxpCtxStack.empty() || _nxpCtxStack.back().device != device)
        panic("host->NxP return with mismatched saved NxP context");
    core.restoreContext(_nxpCtxStack.back().context);
    _nxpCtxStack.pop_back();
    journal(ProtocolStep::nxpResume, task.pid, core.pc());

    ++task.migrations;
    _stats.inc("nxp_host_nxp_roundtrips");
    _stats.inc("nxp_host_nxp_ticks", _events.now() - t0);
    --_depth;
    return back.retval;
}

std::uint64_t
MigrationEngine::migrateNxpToNxp(Task &task, VAddr target, unsigned from,
                                 unsigned to)
{
    ++_depth;
    _stats.inc("nxp_to_nxp_calls");
    journal(ProtocolStep::nxpFault, task.pid, target);

    Core &from_core = *side(from).core;

    // --- Source device: same exit path as an NxP->host call -------------
    MigrationDescriptor d;
    d.kind = DescriptorKind::nxpToHostCall;
    d.pid = static_cast<std::uint32_t>(task.pid);
    d.target = target;
    d.cr3 = task.cr3;
    d.nargs = MigrationDescriptor::maxArgs;
    for (unsigned i = 0; i < MigrationDescriptor::maxArgs; ++i)
        d.args[i] = from_core.arg(i);
    _nxpCtxStack.push_back(
        {from, from_core.saveContext(), from_core.stackPointer()});
    if (_extraRoundTrip)
        advance(_extraRoundTrip);
    sendToHost(d, from);
    journal(ProtocolStep::nxpSendCall, task.pid, target);

    // --- Host kernel: wake, see the target belongs to another NxP, and
    // forward the call descriptor there (device-to-device migrations
    // bounce through the host kernel).
    MigrationDescriptor call = receiveOnHost(task, from);
    journal(ProtocolStep::hostWake, task.pid, call.target);
    journal(ProtocolStep::hostForward, task.pid, call.target);
    ensureNxpStack(task, to);
    advance(_timing.ioctlEntry);
    MigrationDescriptor fwd = call;
    fwd.kind = DescriptorKind::hostToNxpCall;
    fwd.cr3 = task.cr3;
    fwd.nxpSp = currentNxpSp(task, to);
    sendCallToNxp(task, fwd, to);

    std::uint64_t rv = runOnNxpAndReturn(task, to);

    // --- Forward the return value back to the source device -------------
    advance(_timing.ioctlEntry);
    MigrationDescriptor ret;
    ret.kind = DescriptorKind::hostToNxpReturn;
    ret.pid = static_cast<std::uint32_t>(task.pid);
    ret.retval = rv;
    ret.nxpSp = currentNxpSp(task, from);
    sendCallToNxp(task, ret, from);

    MigrationDescriptor back = receiveOnNxp(from);
    if (back.kind != DescriptorKind::hostToNxpReturn)
        panic("NxP expected a forwarded return, got kind %u",
              static_cast<unsigned>(back.kind));
    advance(nxpCycles(from, _timing.nxpCtxSwitchCycles));
    if (_nxpCtxStack.empty() || _nxpCtxStack.back().device != from)
        panic("NxP->NxP return with mismatched saved context");
    from_core.restoreContext(_nxpCtxStack.back().context);
    _nxpCtxStack.pop_back();
    journal(ProtocolStep::nxpResume, task.pid, from_core.pc());

    ++task.migrations;
    _stats.inc("nxp_to_nxp_roundtrips");
    --_depth;
    return back.retval;
}

} // namespace flick
