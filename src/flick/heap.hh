/**
 * @file
 * Per-region heap allocators.
 *
 * Section III-D: "the system has separate memory allocators for each
 * core's local memory" — one heap hands out virtual addresses backed by
 * host DRAM, the other hands out addresses inside the NxP DRAM window.
 * The linker points each ISA's allocation calls at its local allocator;
 * annotations let code allocate explicitly from the other region (e.g.
 * the host building a graph in NxP storage for near-data traversal).
 */

#ifndef FLICK_FLICK_HEAP_HH
#define FLICK_FLICK_HEAP_HH

#include <cstdint>
#include <map>
#include <string>

#include "vm/pte.hh"

namespace flick
{

/**
 * First-fit allocator over a virtual address range that is already
 * mapped. Same policy as PhysAllocator but in VA space with arbitrary
 * (16-byte default) granularity.
 */
class RegionHeap
{
  public:
    RegionHeap(std::string name, VAddr base, std::uint64_t size);

    /** Allocate @p bytes aligned to @p align (power of two, >= 16). */
    VAddr allocate(std::uint64_t bytes, std::uint64_t align = 16);

    /** Free a block previously returned by allocate(). */
    void free(VAddr addr);

    std::uint64_t allocatedBytes() const { return _allocated; }
    std::uint64_t capacity() const { return _size; }
    VAddr base() const { return _base; }

    /** True if @p addr lies inside this heap's range. */
    bool
    contains(VAddr addr) const
    {
        return addr >= _base && addr < _base + _size;
    }

  private:
    std::string _name;
    VAddr _base;
    std::uint64_t _size;
    std::uint64_t _allocated = 0;
    std::map<VAddr, std::uint64_t> _free;  //!< start -> length.
    std::map<VAddr, std::uint64_t> _live;  //!< start -> length.
};

} // namespace flick

#endif // FLICK_FLICK_HEAP_HH
