/**
 * @file
 * Placement & dispatch policy subsystem (DESIGN.md §11).
 *
 * The paper pins every function to one NxP at link time (§placement
 * policy). With multiple NxPs, host-ISA twins (failover, Section 3.3
 * multi-ISA binaries) and measured per-phase latencies, the dispatch
 * boundary can do better: a PlacementPolicy is consulted by the
 * MigrationEngine at every NX-fault dispatch and decides, per call,
 * (a) whether to cross at all — or run the function's host twin — and
 * (b) which device's copy of the text to run.
 *
 * The contract that keeps the simulator deterministic: place() is a
 * pure function of the query, the candidates and the engine-state view.
 * Policies never schedule events, never allocate simulated resources
 * and never draw randomness, so a policy that returns the home
 * placement leaves the event stream tick-for-tick identical to a run
 * with no policy at all (tests/policy_test.cpp asserts this).
 */

#ifndef FLICK_POLICY_POLICY_HH
#define FLICK_POLICY_POLICY_HH

#include <memory>
#include <vector>

#include "mem/sparse_memory.hh"
#include "sim/ticks.hh"
#include "vm/pte.hh"

namespace flick
{

/** The shipped placement policies, selectable via SystemConfig. */
enum class PlacementKind
{
    staticPlacement, //!< The paper's link-time pinning (the default).
    leastLoaded,     //!< Balance across NxPs by queue depth.
    profileGuided,   //!< EWMA cost model; steer host when crossing loses.
    residencyAware,  //!< Follow the data: steer to the argument pages'
                     //!< majority holder (DESIGN.md §15).
};

/** Printable policy-kind name. */
const char *placementKindName(PlacementKind kind);

/** Tunables of the shipped policies (ProfileGuidedPlacement mostly). */
struct PlacementConfig
{
    /** EWMA smoothing: alpha = 1 / 2^ewmaShift. */
    unsigned ewmaShift = 3;
    /**
     * Hysteresis: the host twin must beat the device estimate by this
     * margin (percent) before a call is steered host, so placement does
     * not flap on noise.
     */
    unsigned steerMarginPct = 12;
    /**
     * While a function is steered host, every Nth decision still goes
     * to the device so the model keeps a fresh crossing sample (the
     * device may speed up as load drains). 0 disables re-probing.
     */
    unsigned reprobeInterval = 64;
    /** Device-latency samples required before host-steering is weighed. */
    unsigned minDeviceSamples = 1;
    /**
     * ResidencyAwarePlacement: minimum share (percent) of the access-
     * weighted argument-page votes one holder must collect before the
     * call is steered to it; below the threshold the policy falls back
     * to queue-depth balancing. Acts as placement-side hysteresis — a
     * near-tie never overrides load balancing (DESIGN.md §15).
     */
    unsigned residencyMajorityPct = 50;
};

/** Instantaneous load of one NxP device, as the dispatch path sees it. */
struct DeviceLoad
{
    /** Outstanding work: staged + deferred descriptors + running segment. */
    unsigned depth = 0;
    /** Core currently owned by a thread or handler. */
    bool busy = false;
    /** Written off by the health watchdog; must never be chosen. */
    bool quarantined = false;
    /**
     * Admission control: depth reached the configured in-flight cap.
     * Load-aware policies avoid saturated devices unless every eligible
     * device is saturated (then depth decides as usual). Always false
     * when no admission cap is configured.
     */
    bool saturated = false;
};

/** One dispatch decision request. */
struct PlacementQuery
{
    Addr cr3 = 0;
    /** The function's canonical (home-symbol) virtual address. */
    VAddr canonical = 0;
    /** Device the symbol was linked for (the paper's static placement). */
    unsigned home = 0;
    /** True for a device-originated (device-to-device) call. */
    bool fromDevice = false;
    /** Originating device when fromDevice (excluded from candidates). */
    unsigned callerDevice = 0;
    /**
     * The call's argument registers at fault time. Residency-aware
     * placement treats page-aligned-ish values as potential pointers and
     * consults the residency map for the pages they name; other policies
     * ignore them. Empty when the installed policy needs no arguments.
     */
    std::vector<std::uint64_t> args;
};

/**
 * Where one virtual page's data lives and who has been touching it
 * (PlacementView::pageResidency). Weightless when residency tracking is
 * off: mapped pages still report their holder, counters stay zero.
 */
struct PageResidency
{
    bool mapped = false; //!< False: VA unmapped; all else is meaningless.
    /** Backing store: -1 = host DRAM, k >= 0 = NxP device k's DRAM. */
    int holder = -1;
    /** Timed host-core accesses to the page. */
    std::uint64_t hostAccesses = 0;
    /** Timed NxP-core accesses, indexed by device. */
    std::vector<std::uint64_t> deviceAccesses;
};

/** Where the function's text exists. */
struct PlacementCandidates
{
    /**
     * Per-device dispatch VA (index = device id): the home symbol on its
     * home device plus any registered "__dev<k>" twins; 0 where the
     * device has no copy of the text.
     */
    std::vector<VAddr> deviceVa;
    /** The "__host" twin's VA, or 0 if none is registered. */
    VAddr hostVa = 0;
};

/** The policy's answer. The engine clamps impossible answers to home. */
struct PlacementDecision
{
    bool toHost = false; //!< Run the host twin instead of crossing.
    unsigned device = 0; //!< Target device when !toHost.
    /**
     * How sure the policy is that the chosen side beats the other, as a
     * percentage margin between the two cost estimates (0 = coin flip
     * or no model, 100 = certain / no alternative). Speculative dual
     * execution (DESIGN.md §16) races both sides when this falls below
     * its threshold; policies without a cost model report 100 so they
     * never trigger speculation.
     */
    unsigned confidencePct = 100;
};

/**
 * Read-only view of engine state a policy may consult. Implemented by
 * the MigrationEngine; everything here is cheap and side-effect free.
 */
class PlacementView
{
  public:
    virtual ~PlacementView() = default;

    /** Number of NxP devices in the platform. */
    virtual unsigned deviceCount() const = 0;
    /** Load of @p device right now. */
    virtual DeviceLoad load(unsigned device) const = 0;
    /**
     * Analytic estimate of one Host-NxP-Host crossing's protocol
     * overhead (fault service through wakeup, excluding callee
     * execution), derived from TimingConfig (DESIGN.md §11 equations).
     */
    virtual Tick crossingEstimate() const = 0;
    /**
     * Fixed cost of steering a faulted call to its host twin (the NX
     * fault still fires: fault service + trap exit + handler prologue).
     */
    virtual Tick steerOverhead() const = 0;
    /** Host-to-NxP clock ratio (both cores retire one op per cycle). */
    virtual unsigned hostSpeedup() const = 0;
    /**
     * Residency of the page holding @p va in address space @p cr3: which
     * DRAM backs it and who has been accessing it (DESIGN.md §15). The
     * walk is untimed and side-effect free. The default (engines without
     * a residency tracker, test doubles) reports "unmapped", which makes
     * residency-aware placement degrade to queue-depth balancing.
     */
    virtual PageResidency
    pageResidency(Addr cr3, VAddr va) const
    {
        (void)cr3, (void)va;
        return {};
    }
};

/**
 * The placement decision point. Implementations must be deterministic
 * (no randomness, no wall-clock) — the simulator's reproducibility
 * depends on it.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    virtual const char *name() const = 0;

    /** Decide where the queried call runs. */
    virtual PlacementDecision place(const PlacementQuery &query,
                                    const PlacementCandidates &cands,
                                    const PlacementView &view) = 0;

    /**
     * Whether the engine should feed measured end-to-end latencies back
     * via the record*() hooks (and count them as model updates).
     */
    virtual bool wantsFeedback() const { return false; }

    /** A host-originated call to @p canonical completed on @p device. */
    virtual void
    recordDeviceCall(Addr cr3, VAddr canonical, unsigned device,
                     Tick latency)
    {
        (void)cr3, (void)canonical, (void)device, (void)latency;
    }

    /** A steered/failover call to @p canonical completed on host text. */
    virtual void
    recordHostCall(Addr cr3, VAddr canonical, Tick latency)
    {
        (void)cr3, (void)canonical, (void)latency;
    }

    /**
     * Learned end-to-end latency estimate for a call to (cr3,
     * canonical); 0 = the policy has no model for it. The QoS admission
     * test (DESIGN.md §14) consults this so shedding decisions are made
     * with the same cost model that steers placement; the default says
     * "unknown" and admission falls back to its own end-to-end EWMAs
     * and the analytic crossing floor.
     */
    virtual Tick
    estimateCall(Addr cr3, VAddr canonical) const
    {
        (void)cr3, (void)canonical;
        return 0;
    }
};

/**
 * The paper's placement: every call runs on the device its symbol was
 * linked for. Explicitly installing this policy is tick-for-tick
 * identical to running with no policy at all.
 */
class StaticPlacement final : public PlacementPolicy
{
  public:
    const char *name() const override { return "static"; }

    PlacementDecision
    place(const PlacementQuery &query, const PlacementCandidates &,
          const PlacementView &) override
    {
        return {false, query.home};
    }
};

/** Construct one of the shipped policies. */
std::shared_ptr<PlacementPolicy>
makePlacementPolicy(PlacementKind kind, const PlacementConfig &config);

} // namespace flick

#endif // FLICK_POLICY_POLICY_HH
