#include "policy/profile_guided.hh"

#include "policy/least_loaded.hh"

namespace flick
{

PlacementDecision
ProfileGuidedPlacement::place(const PlacementQuery &query,
                              const PlacementCandidates &cands,
                              const PlacementView &view)
{
    int dev = pickLeastLoaded(query, cands, view);
    if (dev < 0) {
        // No eligible device. Use the host twin when there is one;
        // otherwise hand home back for the engine's failover machinery.
        if (cands.hostVa && !query.fromDevice)
            return {true, query.home};
        return {false, query.home};
    }
    auto device = static_cast<unsigned>(dev);

    // Host-steering is weighed for host-originated calls only: a
    // device-originated call already has state parked on its caller's
    // core, and its host leg is the relay path, not a placement choice.
    if (query.fromDevice || !cands.hostVa)
        return {false, device};

    // From here on both sides are genuine candidates, so an unmodeled
    // function is a coin flip: report zero confidence and let the
    // speculation layer race the sides if it is enabled.
    auto it = _model.find({query.cr3, query.canonical});
    if (it == _model.end())
        return {false, device, 0};
    FnProfile &m = it->second;
    if (m.deviceSamples < _cfg.minDeviceSamples)
        return {false, device, 0};

    Tick device_cost = m.deviceEwma;
    Tick host_cost;
    if (m.hostSamples > 0) {
        host_cost = m.hostEwma;
    } else {
        // No host measurement yet: estimate from the device round trip.
        // Subtracting the analytic crossing overhead leaves the callee's
        // NxP execution time; both cores retire one op per cycle, so the
        // host would run the same instructions hostSpeedup() times
        // faster — plus the fixed fault-service cost steering keeps.
        // (A memory-bound callee breaks the scaling assumption; the
        // first steered call measures the truth and corrects the model.)
        Tick crossing = view.crossingEstimate();
        Tick exec = device_cost > crossing ? device_cost - crossing : 0;
        unsigned speedup = view.hostSpeedup() ? view.hostSpeedup() : 1;
        host_cost = view.steerOverhead() + exec / speedup;
    }

    // Confidence: the relative margin between the two cost estimates.
    // A near-tie (either side could win) reports close to zero; a
    // lopsided model reports close to 100.
    Tick lo = host_cost < device_cost ? host_cost : device_cost;
    Tick hi = host_cost < device_cost ? device_cost : host_cost;
    Tick margin = (hi - lo) * 100 / (lo ? lo : 1);
    auto confidence =
        static_cast<unsigned>(margin > 100 ? 100 : margin);

    // Hysteresis: the host must win by the configured margin.
    if (host_cost + host_cost * _cfg.steerMarginPct / 100 >= device_cost)
        return {false, device, confidence};

    // Steered — but every reprobeInterval-th decision still crosses so
    // the device-side EWMA stays fresh: a reprobe is deliberately
    // resampling the unchosen side, i.e. the model wants fresh data —
    // zero confidence invites speculation to hide the probe's cost.
    ++m.steeredDecisions;
    if (_cfg.reprobeInterval &&
        m.steeredDecisions % _cfg.reprobeInterval == 0)
        return {false, device, 0};
    return {true, device, confidence};
}

void
ProfileGuidedPlacement::recordDeviceCall(Addr cr3, VAddr canonical,
                                         unsigned device, Tick latency)
{
    (void)device;
    FnProfile &m = _model[{cr3, canonical}];
    m.deviceEwma = m.deviceSamples == 0
                       ? latency
                       : CallCostModel::blend(m.deviceEwma, latency,
                                              _cfg.ewmaShift);
    ++m.deviceSamples;
}

void
ProfileGuidedPlacement::recordHostCall(Addr cr3, VAddr canonical,
                                       Tick latency)
{
    FnProfile &m = _model[{cr3, canonical}];
    m.hostEwma = m.hostSamples == 0
                     ? latency
                     : CallCostModel::blend(m.hostEwma, latency,
                                            _cfg.ewmaShift);
    ++m.hostSamples;
}

Tick
ProfileGuidedPlacement::estimateCall(Addr cr3, VAddr canonical) const
{
    // The admission layer asks what this call is expected to cost; the
    // honest answer is the cheaper of the two measured paths, because
    // place() will pick whichever side the model favors.
    auto it = _model.find({cr3, canonical});
    if (it == _model.end())
        return 0;
    const FnProfile &m = it->second;
    Tick device = m.deviceSamples ? m.deviceEwma : 0;
    Tick host = m.hostSamples ? m.hostEwma : 0;
    if (device && host)
        return device < host ? device : host;
    return device ? device : host;
}

const ProfileGuidedPlacement::FnProfile *
ProfileGuidedPlacement::profile(Addr cr3, VAddr canonical) const
{
    auto it = _model.find({cr3, canonical});
    return it == _model.end() ? nullptr : &it->second;
}

} // namespace flick
