/**
 * @file
 * Queue-depth-aware balancing across NxP devices (DESIGN.md §11).
 */

#ifndef FLICK_POLICY_LEAST_LOADED_HH
#define FLICK_POLICY_LEAST_LOADED_HH

#include "policy/policy.hh"

namespace flick
{

/**
 * Pick the least-loaded eligible device for @p query, or -1 when no
 * candidate device is eligible (all quarantined or without text).
 * Eligibility: the device has a copy of the text, is not quarantined,
 * and is not the call's own originating device. Ties break toward the
 * home device, then the lowest device id — a total order, so the choice
 * is deterministic. Shared by LeastLoadedPlacement and
 * ProfileGuidedPlacement.
 */
int pickLeastLoaded(const PlacementQuery &query,
                    const PlacementCandidates &cands,
                    const PlacementView &view);

/**
 * Balance calls across the NxPs by instantaneous queue depth
 * (ring occupancy + deferred descriptors + running segment), skipping
 * quarantined devices. Never steers a call to host text.
 */
class LeastLoadedPlacement final : public PlacementPolicy
{
  public:
    const char *name() const override { return "least-loaded"; }

    PlacementDecision place(const PlacementQuery &query,
                            const PlacementCandidates &cands,
                            const PlacementView &view) override;
};

} // namespace flick

#endif // FLICK_POLICY_LEAST_LOADED_HH
