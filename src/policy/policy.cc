#include "policy/policy.hh"

#include "policy/least_loaded.hh"
#include "policy/profile_guided.hh"
#include "policy/residency_aware.hh"
#include "sim/logging.hh"

namespace flick
{

const char *
placementKindName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::staticPlacement:
        return "static";
      case PlacementKind::leastLoaded:
        return "least-loaded";
      case PlacementKind::profileGuided:
        return "profile-guided";
      case PlacementKind::residencyAware:
        return "residency-aware";
    }
    return "unknown";
}

std::shared_ptr<PlacementPolicy>
makePlacementPolicy(PlacementKind kind, const PlacementConfig &config)
{
    switch (kind) {
      case PlacementKind::staticPlacement:
        return std::make_shared<StaticPlacement>();
      case PlacementKind::leastLoaded:
        return std::make_shared<LeastLoadedPlacement>();
      case PlacementKind::profileGuided:
        return std::make_shared<ProfileGuidedPlacement>(config);
      case PlacementKind::residencyAware:
        return std::make_shared<ResidencyAwarePlacement>(config);
    }
    panic("unknown placement kind");
}

} // namespace flick
