/**
 * @file
 * Data-residency-aware placement (DESIGN.md §15).
 *
 * The paper's Fig. 5 crossover (~32 accesses per migration) is about
 * where the data lives: a call whose working set sits in NxP k's DRAM
 * pays one local access per load when it runs on device k, and a
 * bridge/peer crossing per load anywhere else. This policy looks at
 * the call's argument registers, asks the residency map (the per-page
 * access counters of DESIGN.md §15) which DRAM holds the pages they
 * point at, and steers the call to the majority holder — falling back
 * to queue-depth balancing when the arguments carry no residency
 * signal, and composing with the shared EWMA cost model so a measured
 * latency can veto data gravity.
 */

#ifndef FLICK_POLICY_RESIDENCY_AWARE_HH
#define FLICK_POLICY_RESIDENCY_AWARE_HH

#include "policy/cost_model.hh"
#include "policy/policy.hh"

namespace flick
{

class ResidencyAwarePlacement final : public PlacementPolicy
{
  public:
    explicit ResidencyAwarePlacement(const PlacementConfig &config)
        : _cfg(config), _deviceModel(config.ewmaShift),
          _hostModel(config.ewmaShift)
    {
    }

    const char *name() const override { return "residency-aware"; }

    PlacementDecision place(const PlacementQuery &query,
                            const PlacementCandidates &cands,
                            const PlacementView &view) override;

    bool wantsFeedback() const override { return true; }

    void recordDeviceCall(Addr cr3, VAddr canonical, unsigned device,
                          Tick latency) override;
    void recordHostCall(Addr cr3, VAddr canonical, Tick latency) override;

    /** The cheaper measured estimate, for QoS admission (DESIGN.md §14). */
    Tick estimateCall(Addr cr3, VAddr canonical) const override;

  private:
    PlacementConfig _cfg;
    CallCostModel _deviceModel; //!< Crossing round trips, measured.
    CallCostModel _hostModel;   //!< Host-twin runs incl. fault, measured.
};

} // namespace flick

#endif // FLICK_POLICY_RESIDENCY_AWARE_HH
