/**
 * @file
 * The shared call-cost model (DESIGN.md §11, §14).
 *
 * One integer-EWMA latency model per (address space, function) pair,
 * used from two sides of the engine:
 *
 *   - ProfileGuidedPlacement smooths its per-function device/host round
 *     trips through CallCostModel::blend() — the same update rule the
 *     admission layer uses, so a latency both subsystems observe moves
 *     both estimates identically.
 *   - The QoS admission test (DESIGN.md §14) keeps a CallCostModel of
 *     end-to-end entry latencies: when the placement policy has no
 *     learned estimate for a callee, admission falls back to this model
 *     before resorting to the analytic crossingCostEstimate() floor.
 *
 * Like the placement policies, the model is deterministic and
 * side-effect free: record() and estimate() never allocate simulated
 * resources, never schedule events and never draw randomness.
 */

#ifndef FLICK_POLICY_COST_MODEL_HH
#define FLICK_POLICY_COST_MODEL_HH

#include <cstdint>
#include <map>
#include <utility>

#include "mem/sparse_memory.hh"
#include "sim/ticks.hh"
#include "vm/pte.hh"

namespace flick
{

/**
 * Per-(cr3, va) latency EWMA store.
 */
class CallCostModel
{
  public:
    explicit CallCostModel(unsigned ewma_shift = 3)
        : _shift(ewma_shift)
    {
    }

    /**
     * The shared EWMA step: avg += (sample - avg) / 2^shift, in signed
     * integer arithmetic so the estimate converges from either side.
     * A zero @p avg (never seen) adopts the sample outright.
     */
    static Tick
    blend(Tick avg, Tick sample, unsigned shift)
    {
        if (avg == 0)
            return sample;
        std::int64_t delta = static_cast<std::int64_t>(sample) -
                             static_cast<std::int64_t>(avg);
        return static_cast<Tick>(static_cast<std::int64_t>(avg) +
                                 (delta >> shift));
    }

    /** Fold one measured latency for (cr3, va) into the model. */
    void
    record(Addr cr3, VAddr va, Tick latency)
    {
        Entry &e = _model[{cr3, va}];
        e.ewma = blend(e.ewma, latency, _shift);
        ++e.samples;
    }

    /** Learned latency estimate for (cr3, va); 0 = never seen. */
    Tick
    estimate(Addr cr3, VAddr va) const
    {
        auto it = _model.find({cr3, va});
        return it == _model.end() ? 0 : it->second.ewma;
    }

    /** Number of samples folded in for (cr3, va). */
    std::uint64_t
    samples(Addr cr3, VAddr va) const
    {
        auto it = _model.find({cr3, va});
        return it == _model.end() ? 0 : it->second.samples;
    }

    /** Number of (cr3, va) pairs with learned state. */
    std::size_t size() const { return _model.size(); }

    /** The configured EWMA shift (alpha = 1 / 2^shift). */
    unsigned ewmaShift() const { return _shift; }

  private:
    struct Entry
    {
        Tick ewma = 0;
        std::uint64_t samples = 0;
    };

    unsigned _shift;
    //! std::map for deterministic iteration in tests and tools.
    std::map<std::pair<Addr, VAddr>, Entry> _model;
};

} // namespace flick

#endif // FLICK_POLICY_COST_MODEL_HH
