#include "policy/residency_aware.hh"

#include "policy/least_loaded.hh"

namespace flick
{

namespace
{

/** True if @p d is a device the engine would actually accept. */
bool
eligibleDevice(unsigned d, const PlacementQuery &query,
               const PlacementCandidates &cands, const PlacementView &view)
{
    if (d >= cands.deviceVa.size() || !cands.deviceVa[d])
        return false;
    if (query.fromDevice && d == query.callerDevice)
        return false;
    return !view.load(d).quarantined;
}

} // namespace

PlacementDecision
ResidencyAwarePlacement::place(const PlacementQuery &query,
                               const PlacementCandidates &cands,
                               const PlacementView &view)
{
    // Access-weighted vote over the distinct pages the call's argument
    // registers point at. Values below one page are lengths/flags, not
    // pointers; the rest are asked for their residency. A mapped page
    // votes for its holder with weight 1 + its holder's access count, so
    // a page that is merely *placed* somewhere still has a voice before
    // any counter ticks (cold-start steering), while hot pages dominate.
    std::uint64_t host_votes = 0;
    std::vector<std::uint64_t> dev_votes(view.deviceCount(), 0);
    std::uint64_t seen_pages[8];
    unsigned seen = 0;
    for (std::uint64_t arg : query.args) {
        if (arg < 4096)
            continue;
        std::uint64_t page = arg & ~std::uint64_t(4095);
        bool dup = false;
        for (unsigned i = 0; i < seen; ++i)
            dup = dup || seen_pages[i] == page;
        if (dup || seen >= 8)
            continue;
        seen_pages[seen++] = page;
        PageResidency pr = view.pageResidency(query.cr3, page);
        if (!pr.mapped)
            continue;
        if (pr.holder < 0) {
            host_votes += 1 + pr.hostAccesses;
        } else if (static_cast<unsigned>(pr.holder) < dev_votes.size()) {
            std::uint64_t touches =
                static_cast<unsigned>(pr.holder) < pr.deviceAccesses.size()
                    ? pr.deviceAccesses[pr.holder]
                    : 0;
            dev_votes[pr.holder] += 1 + touches;
        }
    }

    std::uint64_t total = host_votes;
    int best_dev = -1;
    for (unsigned d = 0; d < dev_votes.size(); ++d) {
        total += dev_votes[d];
        if (!dev_votes[d] || !eligibleDevice(d, query, cands, view))
            continue;
        // Ties break toward home, then the lowest id (determinism).
        if (best_dev < 0 || dev_votes[d] > dev_votes[best_dev] ||
            (dev_votes[d] == dev_votes[best_dev] && d == query.home))
            best_dev = static_cast<int>(d);
    }

    // Majority holder is a device: follow the data.
    if (best_dev >= 0 &&
        dev_votes[best_dev] * 100 >= total * _cfg.residencyMajorityPct)
        return {false, static_cast<unsigned>(best_dev)};

    // Majority holder is host DRAM: run the host twin so every access
    // stays local — unless the measured EWMAs say the device round trip
    // beats the host run by the hysteresis margin anyway (compute-bound
    // callee where the NxP's proximity to *other* state wins).
    if (host_votes * 100 >= total * _cfg.residencyMajorityPct &&
        total > 0 && cands.hostVa && !query.fromDevice) {
        Tick dev_est = _deviceModel.estimate(query.cr3, query.canonical);
        Tick host_est = _hostModel.estimate(query.cr3, query.canonical);
        bool device_vetoes =
            dev_est && host_est &&
            _deviceModel.samples(query.cr3, query.canonical) >=
                _cfg.minDeviceSamples &&
            dev_est + dev_est * _cfg.steerMarginPct / 100 < host_est;
        if (!device_vetoes)
            return {true, query.home};
    }

    // No residency signal (or the majority holder is unusable): behave
    // like queue-depth balancing.
    int d = pickLeastLoaded(query, cands, view);
    if (d < 0)
        return {false, query.home};
    return {false, static_cast<unsigned>(d)};
}

void
ResidencyAwarePlacement::recordDeviceCall(Addr cr3, VAddr canonical,
                                          unsigned device, Tick latency)
{
    (void)device;
    _deviceModel.record(cr3, canonical, latency);
}

void
ResidencyAwarePlacement::recordHostCall(Addr cr3, VAddr canonical,
                                        Tick latency)
{
    _hostModel.record(cr3, canonical, latency);
}

Tick
ResidencyAwarePlacement::estimateCall(Addr cr3, VAddr canonical) const
{
    Tick dev = _deviceModel.estimate(cr3, canonical);
    Tick host = _hostModel.estimate(cr3, canonical);
    if (dev && host)
        return dev < host ? dev : host;
    return dev ? dev : host;
}

} // namespace flick
