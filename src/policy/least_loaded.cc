#include "policy/least_loaded.hh"

namespace flick
{

namespace
{

int
scanLeastLoaded(const PlacementQuery &query,
                const PlacementCandidates &cands,
                const PlacementView &view, bool skip_saturated)
{
    int best = -1;
    unsigned best_depth = 0;
    unsigned devices = view.deviceCount();
    for (unsigned d = 0; d < devices && d < cands.deviceVa.size(); ++d) {
        if (!cands.deviceVa[d])
            continue;
        if (query.fromDevice && d == query.callerDevice)
            continue;
        DeviceLoad l = view.load(d);
        if (l.quarantined)
            continue;
        if (skip_saturated && l.saturated)
            continue;
        if (best >= 0) {
            if (l.depth > best_depth)
                continue;
            if (l.depth == best_depth) {
                // Tie: prefer the home device (warm I-cache, the
                // paper's placement), then the lowest id.
                if (static_cast<unsigned>(best) == query.home ||
                    d != query.home)
                    continue;
            }
        }
        best = static_cast<int>(d);
        best_depth = l.depth;
    }
    return best;
}

} // namespace

int
pickLeastLoaded(const PlacementQuery &query,
                const PlacementCandidates &cands,
                const PlacementView &view)
{
    // Admission control: devices at their in-flight cap are avoided while
    // any eligible device still has headroom; when all are saturated the
    // plain depth comparison takes over (the engine's submit-time shedding
    // is the real relief valve).
    int best = scanLeastLoaded(query, cands, view, true);
    if (best < 0)
        best = scanLeastLoaded(query, cands, view, false);
    return best;
}

PlacementDecision
LeastLoadedPlacement::place(const PlacementQuery &query,
                            const PlacementCandidates &cands,
                            const PlacementView &view)
{
    int d = pickLeastLoaded(query, cands, view);
    if (d < 0) {
        // Nothing eligible: hand the home placement back and let the
        // engine's quarantine/failover machinery deal with it.
        return {false, query.home};
    }
    return {false, static_cast<unsigned>(d)};
}

} // namespace flick
