/**
 * @file
 * Profile-guided placement: an online EWMA cost model per function
 * (DESIGN.md §11).
 *
 * "A Magnified View into Heterogeneous-ISA Thread Migration
 * Performance" (PAPERS.md) shows migration profitability depends on
 * the workload; this policy measures it instead of assuming it. Every
 * completed host-originated call feeds its end-to-end latency back
 * into a per-function EWMA; once the model says the host twin would
 * have been cheaper — by a hysteresis margin — subsequent calls are
 * steered to host text instead of crossing, with periodic re-probes so
 * a device that drains can win the function back.
 */

#ifndef FLICK_POLICY_PROFILE_GUIDED_HH
#define FLICK_POLICY_PROFILE_GUIDED_HH

#include <map>
#include <utility>

#include "policy/cost_model.hh"
#include "policy/policy.hh"

namespace flick
{

class ProfileGuidedPlacement final : public PlacementPolicy
{
  public:
    explicit ProfileGuidedPlacement(const PlacementConfig &config)
        : _cfg(config)
    {
    }

    /** The learned state for one function (exposed for tests/tools). */
    struct FnProfile
    {
        Tick deviceEwma = 0; //!< Crossing round trip, measured.
        Tick hostEwma = 0;   //!< Host-twin run incl. fault, measured.
        std::uint64_t deviceSamples = 0;
        std::uint64_t hostSamples = 0;
        //! Host-steer decisions made since the last device re-probe.
        std::uint64_t steeredDecisions = 0;
    };

    const char *name() const override { return "profile-guided"; }

    PlacementDecision place(const PlacementQuery &query,
                            const PlacementCandidates &cands,
                            const PlacementView &view) override;

    bool wantsFeedback() const override { return true; }

    void recordDeviceCall(Addr cr3, VAddr canonical, unsigned device,
                          Tick latency) override;
    void recordHostCall(Addr cr3, VAddr canonical,
                        Tick latency) override;

    /**
     * Admission feedback (DESIGN.md §14): the cheaper of the measured
     * device/host EWMAs — the cost place() would actually choose — so
     * the QoS shedding predicate and placement share one model.
     */
    Tick estimateCall(Addr cr3, VAddr canonical) const override;

    /** The model for (cr3, canonical), or nullptr if never seen. */
    const FnProfile *profile(Addr cr3, VAddr canonical) const;

    /** Number of functions the model has state for. */
    std::size_t modelSize() const { return _model.size(); }

  private:
    PlacementConfig _cfg;
    //! Keyed (cr3, canonical VA); std::map for deterministic iteration.
    std::map<std::pair<Addr, VAddr>, FnProfile> _model;
};

} // namespace flick

#endif // FLICK_POLICY_PROFILE_GUIDED_HH
